package core_test

// Benchmarks of the durability layer's two acceptance numbers: the
// Submit-path overhead of write-ahead journaling (group commit must
// keep sync mode within a few percent of off), and the recovery time
// of a long journal tail.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
	"ptrider/internal/wal"
)

// benchEngine builds a loaded city for the submit benchmark — fleet
// sized so the matching work per Submit is representative of a real
// shard, not dwarfed by fixed per-record costs.
func benchEngine(b *testing.B, mode wal.Mode, dir string, noFsync bool) *core.Engine {
	b.Helper()
	g := testnet.Lattice(rand.New(rand.NewSource(11)), 16, 16, 100)
	e, err := core.NewEngine(g, core.Config{
		GridCols: 8, GridRows: 8, Capacity: 4, Seed: 11,
		MaxWaitSeconds: 600, Sigma: 0.4, MaxPickupSeconds: 1e6,
		Durability: mode, WALDir: dir, WALNoFsync: noFsync,
	})
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}
	e.AddVehiclesUniform(200)
	return e
}

// BenchmarkSubmitDurable measures the durable Submit path against the
// journal-free baseline. Parallel submitters share group commits, so
// the sync-mode delta is the amortised fsync cost per request. The
// sync-nofsync variant runs the full group-commit machinery (encode,
// append, batch wait) with the device sync elided — the journaling
// software overhead, independent of disk latency.
func BenchmarkSubmitDurable(b *testing.B) {
	variants := []struct {
		name    string
		mode    wal.Mode
		noFsync bool
	}{
		{"off", wal.ModeOff, false},
		{"async", wal.ModeAsync, false},
		{"sync", wal.ModeSync, false},
		{"sync-nofsync", wal.ModeSync, true},
	}
	for _, v := range variants {
		mode := v.mode
		b.Run(v.name, func(b *testing.B) {
			dir := ""
			if mode != wal.ModeOff {
				dir = b.TempDir()
			}
			e := benchEngine(b, mode, dir, v.noFsync)
			nv := e.Graph().NumVertices()
			// Warm the path (code, distance memo, page cache) outside
			// the timer so the first variant isn't charged cold-start
			// costs the later ones skip.
			warm := rand.New(rand.NewSource(1000))
			for i := 0; i < 500; i++ {
				s := roadnet.VertexID(warm.Intn(nv))
				d := roadnet.VertexID(warm.Intn(nv))
				if s == d {
					continue
				}
				if _, err := e.Submit(s, d, 1); err != nil {
					b.Fatalf("warmup submit: %v", err)
				}
			}
			var seed int64
			var seedMu sync.Mutex
			// Group commit amortises the fsync over every submitter
			// concurrent with it, so model a loaded front door: many
			// more in-flight requests than cores.
			b.SetParallelism(256)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				seedMu.Lock()
				seed++
				rng := rand.New(rand.NewSource(seed))
				seedMu.Unlock()
				for pb.Next() {
					s := roadnet.VertexID(rng.Intn(nv))
					d := roadnet.VertexID(rng.Intn(nv))
					for d == s {
						d = roadnet.VertexID(rng.Intn(nv))
					}
					if _, err := e.Submit(s, d, 1); err != nil {
						b.Fatalf("submit: %v", err)
					}
				}
			})
			b.StopTimer()
			if mode != wal.ModeOff {
				ds := e.DurabilityStats()
				b.ReportMetric(float64(ds.Records)/float64(ds.Fsyncs+1), "records/fsync")
				b.ReportMetric(ds.AvgFsyncMicros, "fsync-µs")
			}
		})
	}
}

// BenchmarkRecover10kTail measures NewEngine-time recovery of a
// 10,000-record journal tail with no snapshot — the worst case the
// snapshot cadence exists to bound.
func BenchmarkRecover10kTail(b *testing.B) {
	const records = 10_000
	dir := b.TempDir()
	g := testnet.Lattice(rand.New(rand.NewSource(13)), 6, 6, 100)
	cfg := core.Config{
		GridCols: 2, GridRows: 2, Capacity: 4, Seed: 13,
		MaxWaitSeconds: 600, Sigma: 0.4, MaxPickupSeconds: 1e6,
		Durability: wal.ModeSync, WALDir: dir,
	}
	e, err := core.NewEngine(g, cfg)
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}
	e.AddVehiclesUniform(2)
	// Build the tail concurrently so group commit keeps setup fast:
	// submit+decline pairs, two journal records each.
	const workers = 16
	nv := g.NumVertices()
	var wg sync.WaitGroup
	per := (records - 1) / 2 / workers // -1: the placement record counts
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < per; i++ {
				s := roadnet.VertexID(rng.Intn(nv))
				d := roadnet.VertexID(rng.Intn(nv))
				for d == s {
					d = roadnet.VertexID(rng.Intn(nv))
				}
				rec, err := e.SubmitIdem(s, d, 1, core.DefaultConstraints(), fmt.Sprintf("b%d-%d", w, i))
				if err != nil {
					b.Errorf("submit: %v", err)
					return
				}
				if err := e.Decline(rec.ID); err != nil {
					b.Errorf("decline: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if b.Failed() {
		b.FailNow()
	}
	tail := e.DurabilityStats().Records
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := core.NewEngine(g, cfg)
		if err != nil {
			b.Fatalf("recovery: %v", err)
		}
		if ds := got.DurabilityStats(); int64(ds.RecoveredRecords) < tail {
			b.Fatalf("recovered %d records, tail has %d", ds.RecoveredRecords, tail)
		}
		b.StopTimer()
		// Kill before Close: a graceful Close would snapshot and
		// compact the tail away for the next iteration.
		got.Kill()
		if err := got.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
