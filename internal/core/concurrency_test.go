package core_test

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ptrider/internal/core"
	"ptrider/internal/roadnet"
)

// TestConcurrentClients hammers the engine from several goroutines
// mixing submissions, choices, ticks and stats reads; run under -race
// this pins the engine's locking discipline.
func TestConcurrentClients(t *testing.T) {
	e := latticeEngine(t, 30, 8, 8, core.Config{Capacity: 4})
	e.AddVehiclesUniform(20)
	n := e.Graph().NumVertices()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					s := roadnet.VertexID(rng.Intn(n))
					d := roadnet.VertexID(rng.Intn(n))
					if s == d {
						continue
					}
					rec, err := e.Submit(s, d, 1+rng.Intn(2))
					if err != nil {
						errs <- err
						return
					}
					if len(rec.Options) > 0 && rng.Intn(2) == 0 {
						// Choices may fail if the vehicle moved or filled
						// meanwhile — that is expected behaviour, not an
						// engine error.
						_ = e.Choose(rec.ID, rng.Intn(len(rec.Options)))
					} else {
						_ = e.Decline(rec.ID)
					}
				case 2:
					if _, err := e.Tick(1); err != nil {
						errs <- err
						return
					}
				case 3:
					_ = e.Stats()
					_ = e.VehicleViews(5)
				}
			}
		}(int64(worker))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent client: %v", err)
	}
	st := e.Stats()
	if st.Requests == 0 {
		t.Fatal("no requests recorded")
	}
}

// TestConcurrentStress is the full-surface race stress: many goroutines
// mixing Submit, Choose, Decline, Tick, Stats, VehicleViews,
// VehicleSchedules, RemoveVehicle and SubmitBatch, with the engine
// invariants checked both during and after the storm. Under -race this
// exercises every lock in the layered engine: the lock-free substrate
// reads, the sharded distance memo, the per-vehicle probe/commit locks,
// the grid-list lock, and the coordination core.
func TestConcurrentStress(t *testing.T) {
	e := latticeEngine(t, 31, 10, 10, core.Config{
		Capacity:    3,
		CommitSlack: 0.2, // exercise the re-probe path under contention
	})
	e.AddVehiclesUniform(30)
	n := e.Graph().NumVertices()

	const workers = 10
	var wg sync.WaitGroup
	var chooseOK, chooseFail atomic.Int64
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 80; i++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					s := roadnet.VertexID(rng.Intn(n))
					d := roadnet.VertexID(rng.Intn(n))
					if s == d {
						continue
					}
					rec, err := e.Submit(s, d, 1+rng.Intn(3))
					if err != nil {
						errs <- err
						return
					}
					if len(rec.Options) > 0 && rng.Intn(3) > 0 {
						if err := e.Choose(rec.ID, rng.Intn(len(rec.Options))); err == nil {
							chooseOK.Add(1)
						} else {
							chooseFail.Add(1)
						}
					} else {
						_ = e.Decline(rec.ID)
					}
				case 4, 5:
					if _, err := e.Tick(0.5 + rng.Float64()); err != nil {
						errs <- err
						return
					}
				case 6:
					st := e.Stats()
					if st.Assigned > st.Requests {
						errs <- errAssignedExceedsRequests(st)
						return
					}
					_ = e.VehicleViews(10)
				case 7:
					if _, _, err := e.VehicleSchedules(int32(rng.Intn(30))); err != nil {
						// Removed vehicles still answer; only unknown ids
						// error, and we never use unknown ids here.
						errs <- err
						return
					}
				case 8:
					// Failure injection: at most a few removals so the
					// fleet stays useful.
					if rng.Intn(20) == 0 {
						_, _ = e.RemoveVehicle(int32(rng.Intn(30)))
					}
				case 9:
					_, _ = e.SubmitBatch([]core.BatchItem{
						{S: roadnet.VertexID(rng.Intn(n)), D: roadnet.VertexID(rng.Intn(n)), Riders: 1,
							Constraints: core.DefaultConstraints(),
							Choose: func(opts []core.Option) int {
								if len(opts) == 0 {
									return -1
								}
								return 0
							}},
					})
				}
				if i%16 == 0 {
					if err := e.CheckInvariants(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(100 + w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("stress worker: %v", err)
	}

	// Post-storm: every committed schedule must still satisfy the
	// capacity/waiting-time/service constraints (the kinetic trees only
	// store constraint-satisfying schedules; a vehicle with pending
	// requests but zero valid branches would mean a commit violated
	// them), and the lifecycle counters must be consistent.
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("post-storm invariants: %v", err)
	}
	st := e.Stats()
	if st.Requests == 0 || st.Assigned == 0 {
		t.Fatalf("storm did no work: %+v", st)
	}
	if st.Declined+st.Assigned > st.Requests {
		t.Fatalf("declined %d + assigned %d > requests %d", st.Declined, st.Assigned, st.Requests)
	}
	t.Logf("stress: %d requests, %d assigned, %d completed, choose ok/fail %d/%d",
		st.Requests, st.Assigned, st.Completed, chooseOK.Load(), chooseFail.Load())

	// Drain: with traffic stopped the fleet must still be able to
	// finish every onboard rider.
	for i := 0; i < 4000 && e.Stats().Completed < e.Stats().Assigned; i++ {
		if _, err := e.Tick(1); err != nil {
			t.Fatalf("drain tick: %v", err)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("post-drain invariants: %v", err)
	}
}

// TestBatchHotcellRaceStress hammers the coalesced batch pipeline
// specifically: several goroutines issue hot-cell batches (many items
// sharing one origin cell, so the shared ring frontier, the probe-state
// snapshots and the multi-target memo fills are all exercised) while
// tickers move the fleet and a saboteur removes and replaces vehicles
// mid-batch. Under -race this pins the batch path's locking; the
// invariant checks pin that stale probe snapshots can never commit an
// invalid schedule.
func TestBatchHotcellRaceStress(t *testing.T) {
	e := latticeEngine(t, 34, 10, 10, core.Config{
		Capacity:     3,
		CommitSlack:  0.2,
		MatchWorkers: 4,
	})
	e.AddVehiclesUniform(24)
	removable := int32(24)

	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers+3)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 25; i++ {
				items := hotcellItems(e, seed*1000+int64(i), 5)
				for j := range items {
					if rng.Intn(2) == 0 {
						items[j].Choose = func(opts []core.Option) int {
							if len(opts) == 0 {
								return -1
							}
							return rng.Intn(len(opts))
						}
					}
				}
				// Commit failures under concurrent ticks/removals are
				// expected behaviour (reported via the error), not bugs.
				_, _ = e.SubmitBatch(items)
				if i%8 == 0 {
					if err := e.CheckInvariants(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(500 + w))
	}
	for tickers := 0; tickers < 2; tickers++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 60; i++ {
				if _, err := e.Tick(0.5 + rng.Float64()); err != nil {
					errs <- err
					return
				}
			}
		}(int64(600 + tickers))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(700))
		for i := 0; i < 10; i++ {
			_, _ = e.RemoveVehicle(rng.Int31n(removable))
			e.AddVehicleAt(roadnet.VertexID(rng.Intn(e.Graph().NumVertices())))
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("batch stress: %v", err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("post-storm invariants: %v", err)
	}
	if st := e.Stats(); st.Requests == 0 {
		t.Fatal("storm did no work")
	}
}

type statErr core.EngineStats

func errAssignedExceedsRequests(st core.EngineStats) error { return statErr(st) }

func (s statErr) Error() string {
	return "stats snapshot inconsistent: assigned exceeds requests"
}

// TestStatsConsistentUnderLoad is the regression test for the Stats
// snapshot: while submissions, choices and ticks run at full rate,
// every Stats() result must satisfy Assigned ≤ Requests and
// Completed ≤ Assigned — the snapshot must never catch the counters
// mid-update.
func TestStatsConsistentUnderLoad(t *testing.T) {
	e := latticeEngine(t, 32, 8, 8, core.Config{Capacity: 4})
	e.AddVehiclesUniform(15)
	n := e.Graph().NumVertices()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := roadnet.VertexID(rng.Intn(n))
				d := roadnet.VertexID(rng.Intn(n))
				if s == d {
					continue
				}
				rec, err := e.Submit(s, d, 1)
				if err != nil {
					continue
				}
				if len(rec.Options) > 0 {
					_ = e.Choose(rec.ID, 0)
				} else {
					_ = e.Decline(rec.ID)
				}
				if rng.Intn(8) == 0 {
					_, _ = e.Tick(1)
				}
			}
		}(int64(200 + w))
	}

	// Sample until real traffic has flowed (yielding so the workers get
	// scheduled even on a single-core host), bounded by a deadline.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		st := e.Stats()
		if st.Assigned > st.Requests {
			t.Errorf("snapshot %d: assigned %d > requests %d", i, st.Assigned, st.Requests)
			break
		}
		if st.Completed > st.Assigned {
			t.Errorf("snapshot %d: completed %d > assigned %d", i, st.Completed, st.Assigned)
			break
		}
		if st.SharedCompleted > st.Completed {
			t.Errorf("snapshot %d: shared %d > completed %d", i, st.SharedCompleted, st.Completed)
			break
		}
		if (i >= 2000 && st.Requests > 50) || time.Now().After(deadline) {
			break
		}
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	if st := e.Stats(); st.Requests == 0 {
		t.Fatal("no requests recorded")
	}
}

// TestConcurrentSubmitDeterministicLedger checks that fully concurrent
// submissions each get a unique id and a retrievable record.
func TestConcurrentSubmitDeterministicLedger(t *testing.T) {
	e := latticeEngine(t, 33, 8, 8, core.Config{Capacity: 4})
	e.AddVehiclesUniform(10)
	n := e.Graph().NumVertices()

	const workers, per = 8, 25
	ids := make([][]core.RequestID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + w)))
			for i := 0; i < per; i++ {
				s := roadnet.VertexID(rng.Intn(n))
				d := roadnet.VertexID(rng.Intn(n))
				if s == d {
					i--
					continue
				}
				rec, err := e.Submit(s, d, 1)
				if err != nil {
					continue
				}
				ids[w] = append(ids[w], rec.ID)
			}
		}(w)
	}
	wg.Wait()

	seen := make(map[core.RequestID]bool)
	for w := range ids {
		for _, id := range ids[w] {
			if seen[id] {
				t.Fatalf("duplicate request id %d", id)
			}
			seen[id] = true
			if _, err := e.Request(id); err != nil {
				t.Fatalf("request %d not in ledger: %v", id, err)
			}
		}
	}
}

// TestConcurrentShardedTickStress is the race-stress suite for the
// sharded time advancement: with parallel tick workers enabled,
// concurrent Tick + SubmitBatch + Choose + RemoveVehicle goroutines
// must neither race (run under -race) nor break the cross-layer
// invariants. Removal mid-tick is the interesting interleaving: a
// shard's stepVehicle can hit a vehicle that another goroutine just
// removed.
func TestConcurrentShardedTickStress(t *testing.T) {
	e := latticeEngine(t, 51, 8, 8, core.Config{Capacity: 4, TickWorkers: 4})
	e.AddVehiclesUniform(40)
	n := e.Graph().NumVertices()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	var stop atomic.Bool

	// One dedicated ticker: ticks serialise anyway, and a steady tick
	// stream maximises overlap with the mutators below.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200 && !stop.Load(); i++ {
			if _, err := e.Tick(1); err != nil {
				errs <- err
				return
			}
		}
	}()

	for worker := 0; worker < 6; worker++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 60 && !stop.Load(); i++ {
				switch rng.Intn(5) {
				case 0, 1, 2:
					items := make([]core.BatchItem, 1+rng.Intn(3))
					for j := range items {
						s := roadnet.VertexID(rng.Intn(n))
						d := roadnet.VertexID(rng.Intn(n))
						if s == d {
							d = roadnet.VertexID((int(d) + 1) % n)
						}
						pick := rng.Intn(2) == 0
						items[j] = core.BatchItem{
							S: s, D: d, Riders: 1 + rng.Intn(2),
							Choose: func(opts []core.Option) int {
								if pick && len(opts) > 0 {
									return 0
								}
								return -1
							},
						}
					}
					// Commit failures under concurrent ticks/removals are
					// expected behaviour (reported via the error), not bugs.
					_, _ = e.SubmitBatch(items)
				case 3:
					s := roadnet.VertexID(rng.Intn(n))
					d := roadnet.VertexID(rng.Intn(n))
					if s == d {
						continue
					}
					rec, err := e.Submit(s, d, 1)
					if err != nil {
						errs <- err
						return
					}
					if len(rec.Options) > 0 {
						// May fail when the quote went stale — expected.
						_ = e.Choose(rec.ID, rng.Intn(len(rec.Options)))
					} else {
						_ = e.Decline(rec.ID)
					}
				case 4:
					// Removal races the shard walking this vehicle; errors
					// (already removed) are expected, races are not.
					_, _ = e.RemoveVehicle(int32(rng.Intn(40)))
				}
			}
		}(int64(worker) + 100)
	}

	wg.Wait()
	stop.Store(true)
	close(errs)
	for err := range errs {
		t.Errorf("concurrent sharded tick: %v", err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants after sharded stress: %v", err)
	}
	if st := e.Stats(); st.Tick.Workers != 4 {
		t.Fatalf("Tick.Workers = %d, want 4", st.Tick.Workers)
	}
}
