package core_test

import (
	"math/rand"
	"sync"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/roadnet"
)

// TestConcurrentClients hammers the engine from several goroutines
// mixing submissions, choices, ticks and stats reads; run under -race
// this pins the engine's locking discipline.
func TestConcurrentClients(t *testing.T) {
	e := latticeEngine(t, 30, 8, 8, core.Config{Capacity: 4})
	e.AddVehiclesUniform(20)
	n := e.Graph().NumVertices()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					s := roadnet.VertexID(rng.Intn(n))
					d := roadnet.VertexID(rng.Intn(n))
					if s == d {
						continue
					}
					rec, err := e.Submit(s, d, 1+rng.Intn(2))
					if err != nil {
						errs <- err
						return
					}
					if len(rec.Options) > 0 && rng.Intn(2) == 0 {
						// Choices may fail if the vehicle moved or filled
						// meanwhile — that is expected behaviour, not an
						// engine error.
						_ = e.Choose(rec.ID, rng.Intn(len(rec.Options)))
					} else {
						_ = e.Decline(rec.ID)
					}
				case 2:
					if _, err := e.Tick(1); err != nil {
						errs <- err
						return
					}
				case 3:
					_ = e.Stats()
					_ = e.VehicleViews(5)
				}
			}
		}(int64(worker))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent client: %v", err)
	}
	st := e.Stats()
	if st.Requests == 0 {
		t.Fatal("no requests recorded")
	}
}
