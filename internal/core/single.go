package core

import (
	"math"

	"ptrider/internal/gridindex"
	"ptrider/internal/skyline"
)

// SingleSideMatcher implements the single-side search algorithm (paper
// §3.3): starting from the grid cell of the request's start location s,
// cells are visited in ascending order of their lower-bound distance to
// s (each cell's precomputed sorted cell list). Empty and non-empty
// vehicles are processed separately:
//
//   - Empty vehicles: both coordinates of an empty vehicle's option grow
//     with dist(l, s), so only the nearest empty vehicle can contribute
//     (the empty-vehicle dominance lemma); the ring scan finds it
//     without quoting the rest.
//   - Non-empty vehicles: a vehicle is verified (kinetic-tree insertion
//     probe) only if its optimistic option (LB(l, s), f_n·dist(s,d)) is
//     not already dominated by the running skyline. With MatchWorkers
//     > 1 the survivors of a cell are probed concurrently and folded in
//     discovery order (see parallel.go).
//
// Ring expansion terminates when a hypothetical vehicle at the current
// ring radius could no longer contribute a non-dominated option, or
// when the radius exceeds the engine's pick-up cutoff.
//
// The matcher is stateless; per-match workspace comes from the shared
// scratch pool, so concurrent Match calls are safe.
type SingleSideMatcher struct {
	ctx *matchContext
}

func newSingleSideMatcher(ctx *matchContext) *SingleSideMatcher {
	return &SingleSideMatcher{ctx: ctx}
}

// Name implements Matcher.
func (m *SingleSideMatcher) Name() string { return "single-side" }

// emptyScan tracks the nearest-empty-vehicle search shared by the
// single- and dual-side matchers. Every improvement is folded into the
// skyline eagerly: the improving option is achievable, so inserting it
// immediately is sound, and it is what arms the detour-based pruning of
// non-empty vehicles with a baseline to dominate against. A closer
// empty vehicle found later dominates (and evicts) the earlier entry.
type emptyScan struct {
	bestDist float64
	// bestOpt is the winning option, snapshotted at scan time so a
	// concurrent move of the vehicle cannot skew the final insert.
	bestOpt Option
	has     bool
	done    bool
}

func newEmptyScan() emptyScan { return emptyScan{bestDist: math.Inf(1)} }

// scanCell folds one cell's empty-vehicle list into the running best:
// lower-bound filtering first, then one batch fill — a single
// multi-target pass bounded by the current best, since anything at or
// beyond it cannot change the scan's outcome — resolves the survivors'
// exact distances, folded in list order.
func (es *emptyScan) scanCell(ctx *matchContext, sc *matchScratch, cell gridindex.CellID, spec *ReqSpec, sky *skyline.Skyline[Option], stats *MatchStats) {
	if spec.Kin.Riders > ctx.fleet.Capacity() {
		// No vehicle can hold the group; the synthetic empty-vehicle
		// option must not be fabricated (the kinetic quote path refuses
		// such requests, and the matchers must agree).
		es.done = true
		return
	}
	sc.ids = ctx.lists.AppendEmpty(cell, sc.ids[:0])
	sc.emptyVehs = sc.emptyVehs[:0]
	sc.emptyLocs = sc.emptyLocs[:0]
	for _, id := range sc.ids {
		v, err := ctx.fleet.Vehicle(id)
		if err != nil {
			continue
		}
		loc, active := v.ActiveLoc()
		if !active {
			continue
		}
		if ctx.disableEmptyLemma {
			// Ablation: treat like a non-empty vehicle — verify unless
			// the optimistic option is dominated.
			lb := ctx.metric.LB(loc, spec.Kin.S)
			if lb > spec.MaxPickupDist || sky.IsDominated(lb, spec.Ratio*(lb+2*spec.Kin.SD)) {
				stats.PrunedVehicles++
				continue
			}
			sc.batch = append(sc.batch, v)
			continue
		}
		lb := ctx.metric.LB(loc, spec.Kin.S)
		if lb >= es.bestDist || lb > spec.MaxPickupDist {
			stats.PrunedVehicles++
			continue
		}
		sc.emptyVehs = append(sc.emptyVehs, v)
		sc.emptyLocs = append(sc.emptyLocs, loc)
	}
	if ctx.disableEmptyLemma {
		// Flush the ablation probes before the cell's non-empty scan,
		// preserving the per-cell phase order.
		ctx.flushBatch(sc, spec, sky, stats)
		return
	}
	es.foldPass(ctx, sc, spec, sky)
}

// foldPass resolves the staged lower-bound survivors
// (sc.emptyVehs/emptyLocs) with one batch fill and folds them in list
// order — shared by the per-request scan and the coalesced group scan,
// whose whole-graph fill answers the pass when present. The filter ran
// against the cell-entry best, so the fill may cover vehicles an
// eagerly-updating scan would have pruned; their distances are at or
// beyond the running best by the bounds' soundness, so the fold
// rejects them and the outcome is identical.
func (es *emptyScan) foldPass(ctx *matchContext, sc *matchScratch, spec *ReqSpec, sky *skyline.Skyline[Option]) {
	if len(sc.emptyLocs) == 0 {
		return
	}
	if cap(sc.emptyDists) < len(sc.emptyLocs) {
		sc.emptyDists = make([]float64, len(sc.emptyLocs))
	}
	dists := sc.emptyDists[:len(sc.emptyLocs)]
	if sc.sFillOK {
		ctx.metric.DistBatchPrefilled(spec.Kin.S, sc.emptyLocs, es.bestDist, dists, sc.sFill, sc.sFillBound, &sc.memoSc)
	} else {
		ctx.metric.DistBatch(spec.Kin.S, sc.emptyLocs, es.bestDist, dists, &sc.memoSc)
	}
	for j, v := range sc.emptyVehs {
		if d := dists[j]; d < es.bestDist {
			es.bestDist = d
			es.bestOpt = emptyVehicleOption(v, d, spec)
			es.has = true
			if d <= spec.MaxPickupDist {
				opt := es.bestOpt
				if !sky.IsDominated(opt.PickupDist, opt.Price) && !sky.ContainsPoint(opt.PickupDist, opt.Price) {
					sky.Add(opt.PickupDist, opt.Price, opt)
				}
			}
		}
	}
}

// terminateAt reports whether cells at ring radius L and beyond can be
// skipped for empty vehicles.
func (es *emptyScan) terminateAt(L float64, spec *ReqSpec, sky *skyline.Skyline[Option]) bool {
	if es.done {
		return true
	}
	if es.bestDist <= L || sky.IsDominated(L, spec.Ratio*(L+2*spec.Kin.SD)) {
		es.done = true
	}
	return es.done
}

// finish inserts the winning empty vehicle's option, if any.
func (es *emptyScan) finish(spec *ReqSpec, sky *skyline.Skyline[Option]) {
	if !es.has || es.bestDist > spec.MaxPickupDist {
		return
	}
	opt := es.bestOpt
	if !sky.IsDominated(opt.PickupDist, opt.Price) && !sky.ContainsPoint(opt.PickupDist, opt.Price) {
		sky.Add(opt.PickupDist, opt.Price, opt)
	}
}

// Match implements Matcher.
func (m *SingleSideMatcher) Match(spec *ReqSpec, stats *MatchStats) []Option {
	ctx := m.ctx
	before := ctx.metric.DistCalls()
	defer func() { stats.DistCalls += ctx.metric.DistCalls() - before }()

	sc := ctx.getScratch()
	defer ctx.putScratch(sc)

	src := ctx.grid().CellOf(spec.Kin.S)
	ring := ctx.grid().Cell(src).Ring
	sc.visit.begin(ctx.fleet.NumVehicles())

	sky := &sc.sky
	sky.Reset()
	es := newEmptyScan()
	nonEmptyDone := false

	for _, entry := range ring {
		L := entry.LB
		if L > spec.MaxPickupDist {
			break
		}
		emptyDone := es.terminateAt(L, spec, sky)
		if !nonEmptyDone && sky.IsDominated(L, spec.MinPrice) {
			nonEmptyDone = true
		}
		if emptyDone && nonEmptyDone {
			break
		}
		stats.CellsScanned++

		if !emptyDone {
			es.scanCell(ctx, sc, entry.Cell, spec, sky, stats)
		}
		if !nonEmptyDone {
			sc.ids = ctx.lists.AppendNonEmpty(entry.Cell, sc.ids[:0])
			for _, id := range sc.ids {
				if !sc.visit.first(id) {
					continue
				}
				v, err := ctx.fleet.Vehicle(id)
				if err != nil {
					continue
				}
				loc, active := v.ActiveLoc()
				if !active {
					continue
				}
				pickupLB := ctx.metric.LB(loc, spec.Kin.S)
				if pickupLB > spec.MaxPickupDist || sky.IsDominated(pickupLB, spec.MinPrice) {
					stats.PrunedVehicles++
					continue
				}
				sc.batch = append(sc.batch, v)
			}
			ctx.flushBatch(sc, spec, sky, stats)
		}
	}
	es.finish(spec, sky)
	return skylineOptions(sky, stats)
}
