// durability.go makes a city engine crash-safe: every state-mutating
// operation appends an outcome record to a wal.Journal before it lands
// in the in-memory ledger, periodic snapshots bound the replay tail,
// and NewEngine recovers snapshot+tail into an engine whose ledger,
// fleet and RNG streams are byte-identical to the crashed one.
//
// # What is journaled
//
// Outcomes, not inputs: a submit record carries the quoted skyline the
// matcher produced (so a recovered quoted request can still be chosen),
// a choose record carries the committed vehicle/price/pickup anchor (so
// replay re-commits without re-running the probe), and a tick record
// carries only (dt, event count, digest) — replay re-runs the fleet
// step, which is deterministic because roaming draws come from counted
// per-vehicle RNG streams (see fleet.CountedSource) and the sharded
// step merges events canonically. The digest cross-checks determinism;
// a mismatch increments DurabilityStats.ReplayDivergence.
//
// All appends happen under ledgerMu, so journal order IS the ledger's
// linearisation order. The fsync wait (Sync mode) happens after
// ledgerMu is released — group commit batches concurrent appenders
// into one fsync, which is what keeps the hot Submit path's durable
// overhead low.
//
// # Known non-durable edges (documented trade-offs)
//
//   - Observability accumulators (response times, P95, tick wall-time
//     panels) reset on restore; lifecycle counters are exact.
//   - RandomVertex draws are not journaled: workload generators that
//     interleave them with engine ops shift the placement stream
//     across a restart. Engine state is unaffected.
//   - Async mode acknowledges before fsync: a crash loses a suffix of
//     acknowledged operations (never a middle), by design.
//   - A Choose landing mid-Tick is linearised at its ledger append,
//     which can differ from the instant the vehicle lock was taken;
//     sequential drivers (and the crash harness) are exact.
package core

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"

	"ptrider/internal/fleet"
	"ptrider/internal/kinetic"
	"ptrider/internal/pricing/surge"
	"ptrider/internal/roadnet"
	"ptrider/internal/wal"
)

// ErrCrashed is re-exported so callers outside core can classify a
// simulated-crash failure without importing wal.
var ErrCrashed = wal.ErrCrashed

// defaultSnapshotEvery is Config.SnapshotEvery's default: snapshot the
// engine after this many journaled records (checked at tick
// boundaries).
const defaultSnapshotEvery = 4096

// idemCapacity bounds the idempotency-key LRU.
const idemCapacity = 4096

// Operation tags of the journal records.
const (
	opSubmit  = "sub"
	opChoose  = "cho"
	opDecline = "dec"
	opCancel  = "can"
	opTick    = "tik"
	opAddV    = "adv"
	opRemV    = "rmv"
	opSurge   = "srg"
)

// walRecord is the envelope of one journaled operation.
type walRecord struct {
	Op      string          `json:"op"`
	Submit  *submitRec      `json:"sub,omitempty"`
	Choose  *chooseRec      `json:"cho,omitempty"`
	ReqID   RequestID       `json:"id,omitempty"` // decline / cancel
	Tick    *tickRec        `json:"tick,omitempty"`
	AddV    *addvRec        `json:"addv,omitempty"`
	Vehicle fleet.VehicleID `json:"veh,omitempty"` // remove-vehicle
	Surge   *surgeRec       `json:"srg,omitempty"`
}

// submitRec is a registered quote: everything registerRecord writes
// into the ledger, including the skyline (a recovered quoted request
// must still be choosable).
type submitRec struct {
	ID     RequestID
	S, D   roadnet.VertexID
	Riders int
	Wait   float64
	Sigma  float64
	SD     float64
	Clock  float64
	// Quote-time fare context (see RequestRecord): the journaled
	// effective ratio is authoritative on replay — recovery must not
	// re-resolve a price the rider already saw.
	FareRatio  float64
	SurgeMult  float64
	SurgeCell  int32
	SurgeEpoch uint64
	IdemKey    string `json:",omitempty"`
	Options    []Option
}

// chooseRec is a committed choice: the outcome of the fleet commit, so
// replay re-applies it without re-probing (quote determinism is not
// assumed — the journaled pickup anchor makes replayed deadlines
// bit-identical).
type chooseRec struct {
	ID               RequestID
	OptionIndex      int
	Vehicle          fleet.VehicleID
	Price            float64
	PlannedPickupOdo float64
	Reprobed         bool
}

// tickRec is one time advance; replay re-runs the deterministic fleet
// step and cross-checks the event digest.
type tickRec struct {
	Dt     float64
	N      int
	Digest uint64
}

// surgeRec is one surge epoch advance: the post-advance EMA vector
// (multipliers re-derive from it), the new epoch number, and the
// clock the next epoch is due at. Replay installs it verbatim instead
// of re-deriving supply — the record is the linearisation point of
// the epoch against concurrent submits.
type surgeRec struct {
	Epoch uint64
	Next  float64
	EMA   []float64
}

// addvRec is a vehicle placement: the drawn locations plus the number
// of raw placement-RNG state steps they consumed, so replay restores
// the stream position without re-drawing (rejection sampling makes
// call counts data-dependent; see fleet.CountedSource).
type addvRec struct {
	Locs  []roadnet.VertexID
	Draws uint64
}

// engSnap is the snapshot payload: the full ledger, fleet state and
// stream positions. byVeh is reconstructed from record statuses.
type engSnap struct {
	Clock     float64
	NextID    int64
	Requests  int64
	Completed int64
	Shared    int64
	Declined  int64
	Assigned  int64
	RngDraws  uint64
	Reqs      []RequestRecord
	Vehicles  []fleet.VehicleState
	Idem      []idemEntry
	Surge     *surgeSnap `json:",omitempty"`
}

// surgeSnap is the surge tracker's snapshot state: the full epoch
// state plus the demand accumulated since the last epoch (snapshots
// land between epochs, so mid-epoch demand must survive too) and the
// clock the next epoch advance is due at.
type surgeSnap struct {
	Next   float64
	Epoch  uint64
	EMA    []float64 `json:",omitempty"`
	Demand []float64 `json:",omitempty"`
}

// DurabilityStats is the /v1/stats durability panel.
type DurabilityStats struct {
	// Mode is "off", "async" or "sync".
	Mode string
	// Journal counters (see wal.Stats); zero when off.
	Records        int64
	Bytes          int64
	Batches        int64
	Fsyncs         int64
	MaxBatch       int64
	AvgFsyncMicros float64
	Segment        uint64
	// Snapshots counts snapshots written this process; LastSnapshotSeg
	// names the newest one (0 = none).
	Snapshots       int64
	LastSnapshotSeg uint64
	// Recovery describes the last NewEngine-time recovery: how many
	// tail records were replayed and what damage the scan repaired.
	Recovered                bool
	RecoveredRecords         int
	RecoveredTruncatedBytes  int64
	RecoveredDroppedSegments int
	RecoveredCorruptSnaps    int
	// ReplayDivergence counts replayed ticks whose event digest did not
	// match the journaled one (0 on a correct engine).
	ReplayDivergence int64
}

// alive fails with ErrCrashed once the engine's journal has been
// killed by a simulated crash: the process is "dead" and every
// state-mutating operation must refuse until a fresh engine recovers
// from disk.
func (e *Engine) alive() error {
	if e.walDead.Load() {
		return ErrCrashed
	}
	return nil
}

// killWAL marks the engine crashed and kills its journal.
func (e *Engine) killWAL() {
	e.walDead.Store(true)
	if e.journal != nil {
		e.journal.Kill()
	}
}

// noteWALErr records a journal failure (ErrCrashed from a group-commit
// wait, for example) so later operations fail fast.
func (e *Engine) noteWALErr(err error) error {
	if err != nil {
		e.walDead.Store(true)
	}
	return err
}

// appendLocked journals one operation record. The caller holds
// ledgerMu — that lock order is what makes the journal the ledger's
// linearisation. The returned Commit must be waited on after ledgerMu
// is released (Sync mode fsyncs are group-committed across appenders).
// The two operation-level crash points fire here: pre-append (the
// record must be absent after recovery) and post-append-pre-apply (the
// record is in the batch; recovery must apply it exactly once if it
// reached disk).
func (e *Engine) appendLocked(rec *walRecord) (wal.Commit, error) {
	if e.journal == nil {
		return wal.Commit{}, nil
	}
	if e.inj.Fire(wal.CrashPreAppend) {
		e.killWAL()
		return wal.Commit{}, ErrCrashed
	}
	payload, err := encodeWALRecord(e.walScratch[:0], rec)
	if err != nil {
		return wal.Commit{}, fmt.Errorf("core: journal encode: %w", err)
	}
	c, err := e.journal.Append(payload)
	e.walScratch = payload[:0] // Append copied it; keep the grown capacity
	if err != nil {
		return wal.Commit{}, e.noteWALErr(err)
	}
	e.recSinceSnap++
	if e.inj.Fire(wal.CrashPostAppend) {
		e.killWAL()
		return wal.Commit{}, ErrCrashed
	}
	return c, nil
}

// eventsDigest folds a tick's merged events into an FNV-1a digest —
// the replay determinism cross-check.
func eventsDigest(events []fleet.Event) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xFF
			h *= prime
			x >>= 8
		}
	}
	for _, ev := range events {
		mix(uint64(ev.Kind))
		mix(uint64(ev.Vehicle))
		mix(uint64(ev.Request))
		mix(math.Float64bits(ev.Odo))
	}
	return h
}

// ---- idempotency ----

// idemEntry is one idempotency mapping, serialised oldest→newest in
// snapshots.
type idemEntry struct {
	Key string    `json:"k"`
	ID  RequestID `json:"id"`
}

// idemLRU maps Idempotency-Key values to the request they registered,
// bounded LRU. Guarded by ledgerMu.
type idemLRU struct {
	cap int
	ll  *list.List // front = newest
	m   map[string]*list.Element
}

func newIdemLRU(capacity int) *idemLRU {
	return &idemLRU{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

func (l *idemLRU) get(key string) (RequestID, bool) {
	el, ok := l.m[key]
	if !ok {
		return 0, false
	}
	l.ll.MoveToFront(el)
	return el.Value.(idemEntry).ID, true
}

func (l *idemLRU) put(key string, id RequestID) {
	if el, ok := l.m[key]; ok {
		el.Value = idemEntry{Key: key, ID: id}
		l.ll.MoveToFront(el)
		return
	}
	l.m[key] = l.ll.PushFront(idemEntry{Key: key, ID: id})
	for l.ll.Len() > l.cap {
		old := l.ll.Back()
		delete(l.m, old.Value.(idemEntry).Key)
		l.ll.Remove(old)
	}
}

// entries exports the mappings oldest→newest (replaying put in that
// order rebuilds the identical LRU order).
func (l *idemLRU) entries() []idemEntry {
	out := make([]idemEntry, 0, l.ll.Len())
	for el := l.ll.Back(); el != nil; el = el.Prev() {
		out = append(out, el.Value.(idemEntry))
	}
	return out
}

// ---- snapshot / recover ----

// openDurability recovers the engine from cfg.WALDir (snapshot + tail
// replay) and opens the journal for appending. Called at the end of
// NewEngine, before any caller-visible operation.
func (e *Engine) openDurability(cfg Config) error {
	if cfg.WALDir == "" {
		return fmt.Errorf("core: durability %v requires WALDir", cfg.Durability)
	}
	e.walDir = cfg.WALDir
	e.inj = cfg.FaultInjector
	rec, err := wal.Recover(cfg.WALDir)
	if err != nil {
		return err
	}
	if rec.Snapshot != nil {
		if err := e.applySnapshot(rec.Snapshot); err != nil {
			return fmt.Errorf("core: snapshot %d: %w", rec.SnapshotSeg, err)
		}
	}
	for i, payload := range rec.Records {
		if err := e.replayRecord(payload); err != nil {
			return fmt.Errorf("core: replay record %d/%d: %w", i+1, len(rec.Records), err)
		}
	}
	j, err := wal.Open(cfg.WALDir, rec.NextSeg, wal.Options{
		Mode: cfg.Durability, Injector: cfg.FaultInjector, NoFsync: cfg.WALNoFsync,
		// Nil registry hands out nil histograms — telemetry off.
		AppendHist: cfg.Telemetry.LatencyHist("ptrider_wal_append_duration_seconds",
			"WAL group-commit batch write wall time."),
		FsyncHist: cfg.Telemetry.LatencyHist("ptrider_wal_fsync_duration_seconds",
			"WAL fsync wall time."),
	})
	if err != nil {
		return err
	}
	e.journal = j
	e.recovered = rec.Snapshot != nil || len(rec.Records) > 0
	e.lastSnapSeg.Store(rec.SnapshotSeg)
	e.recInfo = recoveryInfo{
		records:         len(rec.Records),
		truncatedBytes:  rec.TruncatedBytes,
		droppedSegments: rec.DroppedSegments,
		corruptSnaps:    rec.CorruptSnapshots,
	}
	return nil
}

// recoveryInfo summarises the NewEngine-time recovery for the stats
// panel.
type recoveryInfo struct {
	records         int
	truncatedBytes  int64
	droppedSegments int
	corruptSnaps    int
}

// Kill simulates a process crash: the journal stops accepting appends,
// pending group commits fail with ErrCrashed, and every subsequent
// state-mutating operation refuses. The in-memory state is considered
// lost; recover by building a fresh engine over the same WALDir.
// No-op when durability is off.
func (e *Engine) Kill() {
	if e.journal == nil {
		return
	}
	e.killWAL()
}

// Recovered reports whether NewEngine restored state from a journal
// directory — callers (multicity, the server bootstrap) must then skip
// their initial vehicle seeding.
func (e *Engine) Recovered() bool { return e.recovered }

// captureLocked builds the snapshot payload. The caller holds tickMu
// and ledgerMu, so no vehicle moves and no ledger mutation lands while
// the state is read; ledgerMu → Vehicle.mu (inside SnapshotState) and
// ledgerMu → rngMu are both fresh lock edges with no reverse path.
func (e *Engine) captureLocked() *engSnap {
	s := &engSnap{
		Clock:     e.Clock(),
		NextID:    e.nextID.Load(),
		Requests:  e.requests.Load(),
		Completed: e.completed,
		Shared:    e.shared,
		Declined:  e.declined,
		Assigned:  e.assigned,
		Vehicles:  e.fleet.SnapshotState(),
		Idem:      e.idem.entries(),
	}
	e.rngMu.Lock()
	s.RngDraws = e.rngSrc.Draws()
	e.rngMu.Unlock()
	s.Reqs = make([]RequestRecord, 0, len(e.reqs))
	for _, rec := range e.reqs {
		s.Reqs = append(s.Reqs, *rec)
	}
	sort.Slice(s.Reqs, func(a, b int) bool { return s.Reqs[a].ID < s.Reqs[b].ID })
	if e.tracker != nil {
		st := e.tracker.State()
		s.Surge = &surgeSnap{Next: e.surgeNext, Epoch: st.Epoch, EMA: st.EMA, Demand: st.Demand}
	}
	return s
}

// applySnapshot restores the engine from a snapshot payload. The
// engine is freshly constructed: empty fleet, empty ledger.
func (e *Engine) applySnapshot(payload []byte) error {
	var s engSnap
	if err := json.Unmarshal(payload, &s); err != nil {
		return err
	}
	e.clockBits.Store(math.Float64bits(s.Clock))
	e.nextID.Store(s.NextID)
	e.requests.Store(s.Requests)
	e.completed = s.Completed
	e.shared = s.Shared
	e.declined = s.Declined
	e.assigned = s.Assigned
	e.rngSrc.Burn(s.RngDraws)
	if err := e.fleet.RestoreState(s.Vehicles); err != nil {
		return err
	}
	for i := range s.Reqs {
		rec := s.Reqs[i]
		e.reqs[rec.ID] = &rec
		if rec.Status == StatusAssigned || rec.Status == StatusOnboard {
			if e.byVeh[rec.Vehicle] == nil {
				e.byVeh[rec.Vehicle] = make(map[RequestID]bool)
			}
			e.byVeh[rec.Vehicle][rec.ID] = true
		}
		// Rebuild the surged-quote counter from the restored ledger
		// (zero SurgeMult = pre-pipeline record, not a surge).
		if rec.SurgeMult != 1 && rec.SurgeMult != 0 {
			e.surgedQuotes.Add(1)
		}
	}
	for _, en := range s.Idem {
		e.idem.put(en.Key, en.ID)
	}
	if s.Surge != nil && e.tracker != nil {
		e.tracker.Restore(surge.State{Epoch: s.Surge.Epoch, EMA: s.Surge.EMA, Demand: s.Surge.Demand})
		e.surgeNext = s.Surge.Next
	}
	return nil
}

// replayRecord re-applies one journaled operation. Runs single-threaded
// during NewEngine; ledger locks are taken where shared helpers expect
// them.
func (e *Engine) replayRecord(payload []byte) error {
	r, err := decodeWALRecord(payload)
	if err != nil {
		return err
	}
	switch r.Op {
	case opSubmit:
		s := r.Submit
		rec := &RequestRecord{
			ID: s.ID, S: s.S, D: s.D, Riders: s.Riders,
			WaitSeconds: s.Wait, Sigma: s.Sigma,
			Status: StatusQuoted, Options: s.Options, Chosen: -1,
			SD: s.SD, SubmitClock: s.Clock,
			FareRatio: s.FareRatio, SurgeMult: s.SurgeMult,
			SurgeCell: s.SurgeCell, SurgeEpoch: s.SurgeEpoch,
		}
		e.reqs[rec.ID] = rec
		if e.tracker != nil {
			// Mirror registerRecord: the replayed tracker re-accumulates
			// the same mid-epoch demand the live one held.
			e.tracker.RecordDemand(rec.SurgeCell)
			if rec.SurgeMult != 1 {
				e.surgedQuotes.Add(1)
			}
		}
		if s.IdemKey != "" {
			e.idem.put(s.IdemKey, rec.ID)
		}
		if int64(s.ID) > e.nextID.Load() {
			e.nextID.Store(int64(s.ID))
		}
		e.requests.Add(1)

	case opChoose:
		c := r.Choose
		rec := e.reqs[c.ID]
		if rec == nil {
			return fmt.Errorf("choose of unknown request %d", c.ID)
		}
		spec := kinetic.Request{
			ID: c.ID, S: rec.S, D: rec.D, Riders: rec.Riders,
			SD:           rec.SD,
			ServiceLimit: (1 + rec.Sigma) * rec.SD,
			WaitBudget:   rec.WaitSeconds * e.sub.speed,
		}
		if err := e.fleet.RestoreCommit(c.Vehicle, spec, c.PlannedPickupOdo); err != nil {
			return err
		}
		rec.Status = StatusAssigned
		rec.Chosen = c.OptionIndex
		rec.Vehicle = c.Vehicle
		rec.Price = c.Price
		rec.PlannedPickupOdo = c.PlannedPickupOdo
		if e.byVeh[c.Vehicle] == nil {
			e.byVeh[c.Vehicle] = make(map[RequestID]bool)
		}
		e.byVeh[c.Vehicle][c.ID] = true
		e.assigned++

	case opDecline:
		rec := e.reqs[r.ReqID]
		if rec == nil {
			return fmt.Errorf("decline of unknown request %d", r.ReqID)
		}
		rec.Status = StatusDeclined
		e.declined++

	case opCancel:
		rec := e.reqs[r.ReqID]
		if rec == nil {
			return fmt.Errorf("cancel of unknown request %d", r.ReqID)
		}
		if err := e.fleet.Cancel(rec.Vehicle, r.ReqID); err != nil {
			return err
		}
		rec.Status = StatusDeclined
		delete(e.byVeh[rec.Vehicle], r.ReqID)
		e.assigned--
		e.declined++

	case opTick:
		t := r.Tick
		events, err := e.fleet.Step(t.Dt * e.sub.speed)
		if err != nil {
			return err
		}
		if len(events) != t.N || eventsDigest(events) != t.Digest {
			e.divergence.Add(1)
		}
		e.clockBits.Store(math.Float64bits(e.Clock() + t.Dt))
		e.ledgerMu.Lock()
		for _, ev := range events {
			e.applyEventLocked(ev)
		}
		e.ledgerMu.Unlock()

	case opAddV:
		a := r.AddV
		e.rngMu.Lock()
		e.rngSrc.Burn(a.Draws)
		e.rngMu.Unlock()
		for _, loc := range a.Locs {
			e.fleet.AddVehicle(loc)
		}

	case opSurge:
		// An epoch advance journaled by a surge-enabled engine. A
		// recovery under a surge-disabled config skips it — the fares
		// already quoted are in the submit records; there is no tracker
		// to restore.
		if e.tracker != nil {
			g := r.Surge
			e.tracker.RestoreEpoch(g.Epoch, g.EMA)
			e.surgeNext = g.Next
		}

	case opRemV:
		orphans, err := e.fleet.RemoveVehicle(r.Vehicle)
		if err != nil {
			return err
		}
		e.ledgerMu.Lock()
		for _, o := range orphans {
			if rec := e.reqs[o.ID]; rec != nil {
				rec.Status = StatusDeclined
				delete(e.byVeh[r.Vehicle], o.ID)
			}
		}
		e.ledgerMu.Unlock()

	default:
		return fmt.Errorf("unknown journal op %q", r.Op)
	}
	return nil
}

// Snapshot durably snapshots the engine now: the journal rotates to a
// fresh segment and the full state (covering everything before it) is
// written beside it, after which older segments and snapshots are
// pruned. Serialised against ticks.
func (e *Engine) Snapshot() error {
	if e.journal == nil {
		return nil
	}
	if err := e.alive(); err != nil {
		return err
	}
	e.tickMu.Lock()
	defer e.tickMu.Unlock()
	return e.snapshotHoldingTick()
}

// snapshotHoldingTick is Snapshot's body for callers that already hold
// tickMu (Tick's cadence check would self-deadlock on the public
// method). Rotation and capture happen under ledgerMu — no record can
// land between "state X" and "segment K starts after X" — but the
// serialisation and file write run outside it.
func (e *Engine) snapshotHoldingTick() error {
	e.ledgerMu.Lock()
	seg, err := e.journal.Rotate()
	if err != nil {
		e.ledgerMu.Unlock()
		return e.noteWALErr(err)
	}
	snap := e.captureLocked()
	e.recSinceSnap = 0
	e.ledgerMu.Unlock()

	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("core: snapshot encode: %w", err)
	}
	if err := wal.WriteSnapshot(e.walDir, seg, payload, e.inj); err != nil {
		if errors.Is(err, ErrCrashed) {
			e.killWAL()
		}
		return err
	}
	e.lastSnapSeg.Store(seg)
	e.snapCount.Add(1)
	wal.PruneBefore(e.walDir, seg)
	return nil
}

// snapshotDueLocked reports whether the snapshot cadence has been
// reached. Caller holds ledgerMu.
func (e *Engine) snapshotDueLocked() bool {
	return e.journal != nil && e.snapEvery > 0 && e.recSinceSnap >= e.snapEvery
}

// Close flushes the journal tail, writes a final snapshot and closes
// the journal — the graceful-shutdown path. A crashed engine closes
// its file handles without snapshotting (the disk state is the crash
// state, which is the point). Safe to call when durability is off.
func (e *Engine) Close() error {
	if e.journal == nil {
		return nil
	}
	if e.walDead.Load() {
		return e.journal.Close()
	}
	serr := e.Snapshot()
	if cerr := e.journal.Close(); cerr != nil && serr == nil {
		serr = cerr
	}
	return serr
}

// DurabilityStats snapshots the durability panel.
func (e *Engine) DurabilityStats() DurabilityStats {
	ds := DurabilityStats{Mode: wal.ModeOff.String()}
	if e.journal == nil {
		return ds
	}
	js := e.journal.Stats()
	ds.Mode = e.sub.cfg.Durability.String()
	ds.Records = js.Records
	ds.Bytes = js.Bytes
	ds.Batches = js.Batches
	ds.Fsyncs = js.Fsyncs
	ds.MaxBatch = js.MaxBatch
	ds.AvgFsyncMicros = js.AvgFsyncMicros
	ds.Segment = js.Segment
	ds.Snapshots = e.snapCount.Load()
	ds.LastSnapshotSeg = e.lastSnapSeg.Load()
	ds.Recovered = e.recovered
	ds.RecoveredRecords = e.recInfo.records
	ds.RecoveredTruncatedBytes = e.recInfo.truncatedBytes
	ds.RecoveredDroppedSegments = e.recInfo.droppedSegments
	ds.RecoveredCorruptSnaps = e.recInfo.corruptSnaps
	ds.ReplayDivergence = e.divergence.Load()
	return ds
}
