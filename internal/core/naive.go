package core

import (
	"ptrider/internal/fleet"
	"ptrider/internal/skyline"
)

// NaiveMatcher is the baseline extended directly from the kinetic-tree
// algorithm (paper §3.3): every vehicle is evaluated by inserting the
// request into its kinetic tree; the global skyline filters the
// results. No index pruning is used, so matching cost grows linearly in
// the fleet size — the behaviour the single- and dual-side searches are
// measured against.
type NaiveMatcher struct {
	ctx *matchContext
}

func newNaiveMatcher(ctx *matchContext) *NaiveMatcher { return &NaiveMatcher{ctx: ctx} }

// Name implements Matcher.
func (m *NaiveMatcher) Name() string { return "naive" }

// Match implements Matcher.
func (m *NaiveMatcher) Match(spec *ReqSpec, stats *MatchStats) []Option {
	before := m.ctx.metric.DistCalls()
	var sky skyline.Skyline[Option]
	m.ctx.fleet.Vehicles(func(v *fleet.Vehicle) {
		quoteVehicle(v, spec, &sky, stats)
	})
	stats.DistCalls += m.ctx.metric.DistCalls() - before
	return skylineOptions(&sky, stats)
}
