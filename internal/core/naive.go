package core

// NaiveMatcher is the baseline extended directly from the kinetic-tree
// algorithm (paper §3.3): every vehicle is evaluated by probing its
// kinetic tree with the request; the global skyline filters the
// results. No index pruning is used, so matching cost grows linearly in
// the fleet size — the behaviour the single- and dual-side searches are
// measured against. With MatchWorkers > 1 the probes run concurrently
// and fold in vehicle-id order, so the result is identical to the
// serial scan.
type NaiveMatcher struct {
	ctx *matchContext
}

func newNaiveMatcher(ctx *matchContext) *NaiveMatcher { return &NaiveMatcher{ctx: ctx} }

// Name implements Matcher.
func (m *NaiveMatcher) Name() string { return "naive" }

// Match implements Matcher.
func (m *NaiveMatcher) Match(spec *ReqSpec, stats *MatchStats) []Option {
	ctx := m.ctx
	before := ctx.metric.DistCalls()
	defer func() { stats.DistCalls += ctx.metric.DistCalls() - before }()

	sc := ctx.getScratch()
	defer ctx.putScratch(sc)
	sky := &sc.sky
	sky.Reset()
	for _, v := range ctx.fleet.Snapshot() {
		if !v.Removed() {
			sc.batch = append(sc.batch, v)
		}
	}
	ctx.flushBatch(sc, spec, sky, stats)
	return skylineOptions(sky, stats)
}
