// Package core implements PTRider's matching engine (paper §3):
// answering each ridesharing request with all qualified, non-dominated
// ⟨vehicle, pick-up time, price⟩ options, via three interchangeable
// matching algorithms — the naive kinetic-tree scan, the single-side
// search, and the dual-side search — on top of the grid index, the
// vehicle lists and the kinetic trees.
package core

import (
	"ptrider/internal/gridindex"
	"ptrider/internal/roadnet"
)

// memoMetric is the kinetic.Metric shared by every kinetic tree and
// matcher in one engine: exact distances from a Searcher with
// memoisation (the same vertex pairs recur heavily during insertion
// enumeration), lower bounds from the grid index.
//
// Not safe for concurrent use; the engine serialises all matching.
type memoMetric struct {
	s    *roadnet.Searcher
	grid *gridindex.Grid
	// lm optionally supplies ALT landmark bounds, combined with the
	// grid bounds by max (both are sound lower bounds).
	lm   *roadnet.Landmarks
	memo map[memoKey]float64
	max  int

	// distCalls counts cache-missing exact computations, the "number of
	// shortest path distance computations" metric of paper §3.3.
	distCalls int64
	// noLB disables lower bounds (ablation E8): LB returns 0, which is
	// always sound but prunes nothing.
	noLB bool
}

type memoKey struct{ u, v roadnet.VertexID }

func newMemoMetric(grid *gridindex.Grid, lm *roadnet.Landmarks, noLB bool) *memoMetric {
	return &memoMetric{
		s:    roadnet.NewSearcher(grid.Graph()),
		grid: grid,
		lm:   lm,
		memo: make(map[memoKey]float64, 1<<12),
		max:  1 << 20,
		noLB: noLB,
	}
}

// Dist returns the exact shortest-path distance, memoised.
func (m *memoMetric) Dist(u, v roadnet.VertexID) float64 {
	if u == v {
		return 0
	}
	k := memoKey{u, v}
	if d, ok := m.memo[k]; ok {
		return d
	}
	m.distCalls++
	d := m.s.Dist(u, v)
	if len(m.memo) >= m.max {
		m.memo = make(map[memoKey]float64, 1<<12)
	}
	m.memo[k] = d
	// Road networks are symmetric; cache the reverse too.
	m.memo[memoKey{v, u}] = d
	return d
}

// LB returns a cheap lower bound on Dist(u, v).
func (m *memoMetric) LB(u, v roadnet.VertexID) float64 {
	if m.noLB {
		return 0
	}
	if d, ok := m.memo[memoKey{u, v}]; ok {
		return d
	}
	lb := m.grid.LB(u, v)
	if m.lm != nil {
		if alt := m.lm.LB(u, v); alt > lb {
			lb = alt
		}
	}
	return lb
}

// DistCalls returns the cumulative number of exact shortest-path
// computations (cache misses) since construction.
func (m *memoMetric) DistCalls() int64 { return m.distCalls }

// Reset drops the memo so subsequent DistCalls deltas measure a cold
// cache — used by the benchmark harness to compare algorithms fairly.
func (m *memoMetric) Reset() {
	m.memo = make(map[memoKey]float64, 1<<12)
}
