// Package core implements PTRider's matching engine (paper §3):
// answering each ridesharing request with all qualified, non-dominated
// ⟨vehicle, pick-up time, price⟩ options, via three interchangeable
// matching algorithms — the naive kinetic-tree scan, the single-side
// search, and the dual-side search — on top of the grid index, the
// vehicle lists and the kinetic trees.
package core

import (
	"math"
	"sync"
	"sync/atomic"

	"ptrider/internal/gridindex"
	"ptrider/internal/roadnet"
)

// memoShards is the stripe count of the shared distance memo. Road
// networks issue distance queries from many goroutines at once; 64
// stripes keep lock contention negligible at match-worker counts far
// above any realistic core count.
const memoShards = 64

// memoMetric is the kinetic.Metric shared by every kinetic tree and
// matcher in one engine: exact distances from epoch-stamped Searchers
// with memoisation (the same vertex pairs recur heavily during
// insertion enumeration), lower bounds from the grid index and optional
// ALT landmarks.
//
// Safe for concurrent use: the memo is striped across RWMutex-guarded
// shards keyed by the (order-normalised, since road distances here are
// symmetric) vertex pair, and cache-missing exact computations draw a
// private Searcher from a pool. Two goroutines racing on the same cold
// pair may both compute it — both arrive at the same exact value, so
// the second store is idempotent; DistCalls then counts both, which
// matches its meaning of "exact computations performed".
type memoMetric struct {
	grid *gridindex.Grid
	// lm optionally supplies ALT landmark bounds, combined with the
	// grid bounds by max (both are sound lower bounds).
	lm *roadnet.Landmarks

	searchers sync.Pool // *roadnet.Searcher
	shards    [memoShards]memoShard
	// maxPerShard bounds each shard's memo; wholesale per-shard reset
	// once full, as in the serial engine.
	maxPerShard int

	// distCalls counts cache-missing exact computations, the "number of
	// shortest path distance computations" metric of paper §3.3.
	distCalls atomic.Int64
	// fillFallbacks counts beyond-bound targets of radius-bounded fills
	// resolved by per-pair fallback searches (see DistBatchPrefilled).
	fillFallbacks atomic.Int64
	// noLB disables lower bounds (ablation E8): LB returns 0, which is
	// always sound but prunes nothing.
	noLB bool
}

type memoShard struct {
	mu   sync.RWMutex
	memo map[memoKey]float64
}

type memoKey struct{ u, v roadnet.VertexID }

// normKey order-normalises a vertex pair: distances are symmetric, so
// (u,v) and (v,u) share one memo entry (and one shard).
func normKey(u, v roadnet.VertexID) memoKey {
	if u > v {
		u, v = v, u
	}
	return memoKey{u, v}
}

func (k memoKey) shard() int {
	h := uint64(uint32(k.u))*0x9e3779b1 ^ uint64(uint32(k.v))*0x85ebca77
	return int(h % memoShards)
}

func newMemoMetric(grid *gridindex.Grid, lm *roadnet.Landmarks, noLB bool) *memoMetric {
	m := &memoMetric{
		grid:        grid,
		lm:          lm,
		maxPerShard: (1 << 20) / memoShards,
		noLB:        noLB,
	}
	g := grid.Graph()
	m.searchers.New = func() any { return roadnet.NewSearcher(g) }
	for i := range m.shards {
		m.shards[i].memo = make(map[memoKey]float64, 1<<6)
	}
	return m
}

// Dist returns the exact shortest-path distance, memoised.
func (m *memoMetric) Dist(u, v roadnet.VertexID) float64 {
	if u == v {
		return 0
	}
	k := normKey(u, v)
	sh := &m.shards[k.shard()]
	sh.mu.RLock()
	d, ok := sh.memo[k]
	sh.mu.RUnlock()
	if ok {
		return d
	}
	m.distCalls.Add(1)
	s := m.searchers.Get().(*roadnet.Searcher)
	d = s.Dist(u, v)
	m.searchers.Put(s)
	sh.mu.Lock()
	if len(sh.memo) >= m.maxPerShard {
		sh.memo = make(map[memoKey]float64, 1<<6)
	}
	sh.memo[k] = d
	sh.mu.Unlock()
	return d
}

// LB returns a cheap lower bound on Dist(u, v).
func (m *memoMetric) LB(u, v roadnet.VertexID) float64 {
	if m.noLB {
		return 0
	}
	k := normKey(u, v)
	sh := &m.shards[k.shard()]
	sh.mu.RLock()
	d, ok := sh.memo[k]
	sh.mu.RUnlock()
	if ok {
		return d
	}
	lb := m.grid.LB(u, v)
	if m.lm != nil {
		if alt := m.lm.LB(u, v); alt > lb {
			lb = alt
		}
	}
	return lb
}

// memoBatchScratch is the caller-owned workspace of the batch-fill
// APIs, reused across calls so batch fills allocate nothing in steady
// state.
type memoBatchScratch struct {
	keys    []memoKey
	shardOf []uint8
	miss    []bool
	missLoc []roadnet.VertexID
	missOut []float64
	missIdx []int32
	counts  [memoShards]int32
}

func (sc *memoBatchScratch) reset(k int) {
	if cap(sc.keys) < k {
		sc.keys = make([]memoKey, k)
		sc.shardOf = make([]uint8, k)
		sc.miss = make([]bool, k)
	}
	sc.keys = sc.keys[:k]
	sc.shardOf = sc.shardOf[:k]
	sc.miss = sc.miss[:k]
	sc.missLoc = sc.missLoc[:0]
	sc.missOut = sc.missOut[:0]
	sc.missIdx = sc.missIdx[:0]
	sc.counts = [memoShards]int32{}
}

// batchLookup is the shared read phase of the batch-fill APIs: it
// resolves every cached (from, target) pair with one read lock per
// touched stripe — not one lock round-trip per pair — and collects the
// misses in sc. It reports whether any miss remains.
func (m *memoMetric) batchLookup(from roadnet.VertexID, targets []roadnet.VertexID, out []float64, sc *memoBatchScratch) bool {
	k := len(targets)
	if len(out) != k {
		panic("core: batch fill out length mismatch")
	}
	sc.reset(k)
	for i, t := range targets {
		sc.miss[i] = false
		if t == from {
			out[i] = 0
			sc.shardOf[i] = memoShards // no stripe visit needed
			continue
		}
		key := normKey(from, t)
		sh := key.shard()
		sc.keys[i] = key
		sc.shardOf[i] = uint8(sh)
		sc.counts[sh]++
	}
	for sh := 0; sh < memoShards; sh++ {
		if sc.counts[sh] == 0 {
			continue
		}
		stripe := &m.shards[sh]
		stripe.mu.RLock()
		for i := range targets {
			if int(sc.shardOf[i]) != sh {
				continue
			}
			if d, ok := stripe.memo[sc.keys[i]]; ok {
				out[i] = d
			} else {
				sc.miss[i] = true
			}
		}
		stripe.mu.RUnlock()
	}
	for i := range targets {
		if sc.miss[i] {
			sc.missLoc = append(sc.missLoc, targets[i])
			sc.missIdx = append(sc.missIdx, int32(i))
		}
	}
	return len(sc.missLoc) > 0
}

// batchStore is the shared write phase: the resolved misses (sc.missOut)
// are scattered into out and stored with one write lock per touched
// stripe. Values beyond maxDist are truncation artefacts, not proven
// distances, and are not cached; with maxDist = +Inf a +Inf value is a
// proven disconnection and is cached like any other.
func (m *memoMetric) batchStore(maxDist float64, out []float64, sc *memoBatchScratch) {
	storeInf := math.IsInf(maxDist, 1)
	for j, i := range sc.missIdx {
		out[i] = sc.missOut[j]
	}
	for sh := 0; sh < memoShards; sh++ {
		if sc.counts[sh] == 0 {
			continue
		}
		stripe := &m.shards[sh]
		locked := false
		for j, i := range sc.missIdx {
			if int(sc.shardOf[i]) != sh {
				continue
			}
			d := sc.missOut[j]
			if math.IsInf(d, 1) && !storeInf {
				continue
			}
			if !locked {
				stripe.mu.Lock()
				locked = true
			}
			if len(stripe.memo) >= m.maxPerShard {
				stripe.memo = make(map[memoKey]float64, 1<<6)
			}
			stripe.memo[sc.keys[i]] = d
		}
		if locked {
			stripe.mu.Unlock()
		}
	}
}

// DistBatch fills out[i] = Dist(from, targets[i]) for every target
// within maxDist: cached pairs are read with one shard visit per
// touched stripe, the misses are resolved by a single multi-target
// Dijkstra pass, and the freshly computed distances warm the memo with
// one write lock per touched stripe.
//
// One multi-target pass counts as one DistCall: the metric counts
// shortest-path searches performed, and the pass is a single search —
// that is exactly the batching win over per-pair point queries.
func (m *memoMetric) DistBatch(from roadnet.VertexID, targets []roadnet.VertexID, maxDist float64, out []float64, sc *memoBatchScratch) {
	if len(targets) == 0 {
		return
	}
	if !m.batchLookup(from, targets, out, sc) {
		return
	}
	m.distCalls.Add(1)
	s := m.searchers.Get().(*roadnet.Searcher)
	if cap(sc.missOut) < len(sc.missLoc) {
		sc.missOut = make([]float64, len(sc.missLoc))
	}
	sc.missOut = sc.missOut[:len(sc.missLoc)]
	s.DistsTo(from, sc.missLoc, maxDist, sc.missOut)
	m.searchers.Put(s)
	m.batchStore(maxDist, out, sc)
}

// DistBatchPrefilled is DistBatch with the misses answered from a
// radius-bounded fill (see FillDistsUncached) instead of a fresh pass:
// the memo read, the truncation semantics and the grouped store are
// identical — so the memo evolves exactly as if DistBatch had run —
// and no additional search runs for targets the fill settled.
// fillBound is the radius the fill was truncated at: a +Inf fill entry
// within it is a proven disconnection, while one beyond it only means
// "farther than the bound", so when the query's maxDist reaches past
// the bound the pair falls back to one exact point search (counted in
// DistCalls like any other). The bound is sized so that fallbacks are
// rare — see fillRadius.
func (m *memoMetric) DistBatchPrefilled(from roadnet.VertexID, targets []roadnet.VertexID, maxDist float64, out []float64, fill []float64, fillBound float64, sc *memoBatchScratch) {
	if len(targets) == 0 {
		return
	}
	if !m.batchLookup(from, targets, out, sc) {
		return
	}
	if cap(sc.missOut) < len(sc.missLoc) {
		sc.missOut = make([]float64, len(sc.missLoc))
	}
	sc.missOut = sc.missOut[:len(sc.missLoc)]
	for j, t := range sc.missLoc {
		d := fill[t]
		if math.IsInf(d, 1) && maxDist > fillBound {
			// Beyond-bound target: the truncated fill cannot tell "far"
			// from "unreachable" and the query needs the real value.
			m.fillFallbacks.Add(1)
			d = m.Dist(from, t)
		}
		if d > maxDist {
			d = math.Inf(1) // mirror the bounded pass's truncation
		}
		sc.missOut[j] = d
	}
	m.batchStore(maxDist, out, sc)
}

// FillDistsUncached runs one radius-bounded pass from one origin,
// filling out[v] for every vertex within maxDist and +Inf beyond it,
// without touching the memo. One fill per request side is what the
// coalesced batch pipeline amortises all of its distance queries
// against; the bound keeps a continent-scale graph from paying a
// whole-graph settle for a city-scale frontier. Counts one DistCall:
// one search.
func (m *memoMetric) FillDistsUncached(from roadnet.VertexID, maxDist float64, out []float64) {
	m.distCalls.Add(1)
	s := m.searchers.Get().(*roadnet.Searcher)
	s.FillDists(from, maxDist, out)
	m.searchers.Put(s)
}

// FillFallbacks returns the cumulative number of beyond-bound targets
// DistBatchPrefilled resolved by per-pair fallback searches — the
// "rare" in the radius-bound design, pinned by regression tests.
func (m *memoMetric) FillFallbacks() int64 { return m.fillFallbacks.Load() }

// DistCalls returns the cumulative number of exact shortest-path
// computations (cache misses) since construction.
func (m *memoMetric) DistCalls() int64 { return m.distCalls.Load() }

// Reset drops the memo so subsequent DistCalls deltas measure a cold
// cache — used by the benchmark harness to compare algorithms fairly.
func (m *memoMetric) Reset() {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		sh.memo = make(map[memoKey]float64, 1<<6)
		sh.mu.Unlock()
	}
}
