// Package core implements PTRider's matching engine (paper §3):
// answering each ridesharing request with all qualified, non-dominated
// ⟨vehicle, pick-up time, price⟩ options, via three interchangeable
// matching algorithms — the naive kinetic-tree scan, the single-side
// search, and the dual-side search — on top of the grid index, the
// vehicle lists and the kinetic trees.
package core

import (
	"sync"
	"sync/atomic"

	"ptrider/internal/gridindex"
	"ptrider/internal/roadnet"
)

// memoShards is the stripe count of the shared distance memo. Road
// networks issue distance queries from many goroutines at once; 64
// stripes keep lock contention negligible at match-worker counts far
// above any realistic core count.
const memoShards = 64

// memoMetric is the kinetic.Metric shared by every kinetic tree and
// matcher in one engine: exact distances from epoch-stamped Searchers
// with memoisation (the same vertex pairs recur heavily during
// insertion enumeration), lower bounds from the grid index and optional
// ALT landmarks.
//
// Safe for concurrent use: the memo is striped across RWMutex-guarded
// shards keyed by the (order-normalised, since road distances here are
// symmetric) vertex pair, and cache-missing exact computations draw a
// private Searcher from a pool. Two goroutines racing on the same cold
// pair may both compute it — both arrive at the same exact value, so
// the second store is idempotent; DistCalls then counts both, which
// matches its meaning of "exact computations performed".
type memoMetric struct {
	grid *gridindex.Grid
	// lm optionally supplies ALT landmark bounds, combined with the
	// grid bounds by max (both are sound lower bounds).
	lm *roadnet.Landmarks

	searchers sync.Pool // *roadnet.Searcher
	shards    [memoShards]memoShard
	// maxPerShard bounds each shard's memo; wholesale per-shard reset
	// once full, as in the serial engine.
	maxPerShard int

	// distCalls counts cache-missing exact computations, the "number of
	// shortest path distance computations" metric of paper §3.3.
	distCalls atomic.Int64
	// noLB disables lower bounds (ablation E8): LB returns 0, which is
	// always sound but prunes nothing.
	noLB bool
}

type memoShard struct {
	mu   sync.RWMutex
	memo map[memoKey]float64
}

type memoKey struct{ u, v roadnet.VertexID }

// normKey order-normalises a vertex pair: distances are symmetric, so
// (u,v) and (v,u) share one memo entry (and one shard).
func normKey(u, v roadnet.VertexID) memoKey {
	if u > v {
		u, v = v, u
	}
	return memoKey{u, v}
}

func (k memoKey) shard() int {
	h := uint64(uint32(k.u))*0x9e3779b1 ^ uint64(uint32(k.v))*0x85ebca77
	return int(h % memoShards)
}

func newMemoMetric(grid *gridindex.Grid, lm *roadnet.Landmarks, noLB bool) *memoMetric {
	m := &memoMetric{
		grid:        grid,
		lm:          lm,
		maxPerShard: (1 << 20) / memoShards,
		noLB:        noLB,
	}
	g := grid.Graph()
	m.searchers.New = func() any { return roadnet.NewSearcher(g) }
	for i := range m.shards {
		m.shards[i].memo = make(map[memoKey]float64, 1<<6)
	}
	return m
}

// Dist returns the exact shortest-path distance, memoised.
func (m *memoMetric) Dist(u, v roadnet.VertexID) float64 {
	if u == v {
		return 0
	}
	k := normKey(u, v)
	sh := &m.shards[k.shard()]
	sh.mu.RLock()
	d, ok := sh.memo[k]
	sh.mu.RUnlock()
	if ok {
		return d
	}
	m.distCalls.Add(1)
	s := m.searchers.Get().(*roadnet.Searcher)
	d = s.Dist(u, v)
	m.searchers.Put(s)
	sh.mu.Lock()
	if len(sh.memo) >= m.maxPerShard {
		sh.memo = make(map[memoKey]float64, 1<<6)
	}
	sh.memo[k] = d
	sh.mu.Unlock()
	return d
}

// LB returns a cheap lower bound on Dist(u, v).
func (m *memoMetric) LB(u, v roadnet.VertexID) float64 {
	if m.noLB {
		return 0
	}
	k := normKey(u, v)
	sh := &m.shards[k.shard()]
	sh.mu.RLock()
	d, ok := sh.memo[k]
	sh.mu.RUnlock()
	if ok {
		return d
	}
	lb := m.grid.LB(u, v)
	if m.lm != nil {
		if alt := m.lm.LB(u, v); alt > lb {
			lb = alt
		}
	}
	return lb
}

// DistCalls returns the cumulative number of exact shortest-path
// computations (cache misses) since construction.
func (m *memoMetric) DistCalls() int64 { return m.distCalls.Load() }

// Reset drops the memo so subsequent DistCalls deltas measure a cold
// cache — used by the benchmark harness to compare algorithms fairly.
func (m *memoMetric) Reset() {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		sh.memo = make(map[memoKey]float64, 1<<6)
		sh.mu.Unlock()
	}
}
