package core_test

// Kill-restart-verify harness for the engine's write-ahead journal
// (internal/core/durability.go): a deterministic scripted workload runs
// against a journaled engine with a crash armed at every reachable
// operation boundary; after the simulated process death the directory
// is recovered into a fresh engine, the interrupted operation is
// re-issued the way a real client would (submits retried under their
// idempotency key, choices retried until already-chosen, ticks retried
// unless the clock already advanced), and the final state must be
// equivalent to an uncrashed reference run — lifecycle counts exact,
// positions and prices to 1e-9, and identical future movement.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/fleet"
	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
	"ptrider/internal/wal"
)

const eps = 1e-9

// walEngineConfig is the shared scripted-workload configuration: small
// city, modest fleet, generous constraints so most submissions quote.
func walEngineConfig(mode wal.Mode, dir string, inj *wal.Injector, snapEvery int) core.Config {
	return core.Config{
		GridCols: 4, GridRows: 4,
		Capacity: 4, Seed: 5,
		MaxWaitSeconds: 600, Sigma: 0.4, MaxPickupSeconds: 1e6,
		Durability: mode, WALDir: dir, SnapshotEvery: snapEvery,
		FaultInjector: inj,
	}
}

// walEngine builds (or recovers) a scripted-workload engine. A fresh
// directory seeds 10 vehicles; a recovered one keeps its journaled
// fleet.
func walEngine(t testing.TB, mode wal.Mode, dir string, inj *wal.Injector, snapEvery int) *core.Engine {
	t.Helper()
	g := testnet.Lattice(rand.New(rand.NewSource(5)), 8, 8, 100)
	e, err := core.NewEngine(g, walEngineConfig(mode, dir, inj, snapEvery))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if !e.Recovered() {
		if ids := e.AddVehiclesUniform(10); len(ids) != 10 {
			if !inj.Fired() {
				t.Fatalf("seeded %d vehicles", len(ids))
			}
			// The armed fault fired during the initial placement — the
			// simulated process died at boot. Restart it: recovery either
			// replays the journaled placement or (pre-append) finds an
			// empty journal and reseeds identically from the seed.
			return walEngine(t, mode, dir, nil, snapEvery)
		}
	}
	return e
}

// scriptStep is one operation of the deterministic workload.
type scriptStep struct {
	kind string // submit | finish | decline | cancel | tick
	s, d roadnet.VertexID
	ref  int
	dt   float64
}

// buildScript generates the scripted workload: submissions under
// idempotency keys interleaved with choices, declines, cancellations
// and time advances. Pure function of the vertex count.
func buildScript(nVerts int) []scriptStep {
	rng := rand.New(rand.NewSource(99))
	pair := func() (roadnet.VertexID, roadnet.VertexID) {
		s := roadnet.VertexID(rng.Intn(nVerts))
		d := roadnet.VertexID(rng.Intn(nVerts))
		for d == s {
			d = roadnet.VertexID(rng.Intn(nVerts))
		}
		return s, d
	}
	var steps []scriptStep
	ref := 0
	submit := func() int {
		s, d := pair()
		steps = append(steps, scriptStep{kind: "submit", s: s, d: d, ref: ref})
		ref++
		return ref - 1
	}
	for i := 0; i < 30; i++ {
		switch i % 6 {
		case 0, 5:
			r := submit()
			steps = append(steps, scriptStep{kind: "finish", ref: r})
		case 1:
			r := submit()
			steps = append(steps, scriptStep{kind: "decline", ref: r})
		case 2:
			submit() // left quoted
		case 3:
			r := submit()
			steps = append(steps, scriptStep{kind: "finish", ref: r})
			steps = append(steps, scriptStep{kind: "cancel", ref: r})
		case 4:
			steps = append(steps, scriptStep{kind: "tick", dt: 4})
		}
	}
	steps = append(steps, scriptStep{kind: "tick", dt: 4})
	return steps
}

// scriptRunner executes the script against an engine, surviving at
// most one simulated crash by recovering the WAL directory and
// re-issuing the interrupted operation.
type scriptRunner struct {
	t       *testing.T
	e       *core.Engine
	recover func() *core.Engine // nil → crashes are fatal (reference run)
	ids     map[int]core.RequestID
	nopt    map[int]int
	crashed bool
}

func (r *scriptRunner) onCrash(err error) {
	r.t.Helper()
	if !errors.Is(err, core.ErrCrashed) {
		r.t.Fatalf("unexpected error: %v", err)
	}
	if r.recover == nil {
		r.t.Fatalf("reference run crashed: %v", err)
	}
	if r.crashed {
		r.t.Fatalf("second crash in one run")
	}
	r.crashed = true
	r.e = r.recover()
}

func (r *scriptRunner) run(steps []scriptStep) {
	r.t.Helper()
	r.ids = make(map[int]core.RequestID)
	r.nopt = make(map[int]int)
	for i, st := range steps {
		switch st.kind {
		case "submit":
			key := fmt.Sprintf("k%d", st.ref)
			rec, err := r.e.SubmitIdem(st.s, st.d, 1, core.DefaultConstraints(), key)
			if err != nil {
				r.onCrash(err)
				// Retried under the same key: if the original landed in
				// the journal the recovered engine answers it verbatim,
				// otherwise this re-registers under the same id (the id
				// sequence is restored from the journal).
				rec, err = r.e.SubmitIdem(st.s, st.d, 1, core.DefaultConstraints(), key)
				if err != nil {
					r.t.Fatalf("step %d: submit retry: %v", i, err)
				}
			}
			r.ids[st.ref] = rec.ID
			r.nopt[st.ref] = len(rec.Options)

		case "finish": // choose option 0 when quoted, decline otherwise
			id := r.ids[st.ref]
			if r.nopt[st.ref] == 0 {
				r.declineStep(i, id)
				continue
			}
			err := r.e.Choose(id, 0)
			if err != nil {
				r.onCrash(err)
				err = r.e.Choose(id, 0)
				if errors.Is(err, core.ErrAlreadyChosen) {
					err = nil // the original choice survived in the journal
				}
				if err != nil {
					r.t.Fatalf("step %d: choose retry: %v", i, err)
				}
			}

		case "decline":
			r.declineStep(i, r.ids[st.ref])

		case "cancel":
			id := r.ids[st.ref]
			rec, err := r.e.Request(id)
			if err != nil {
				r.t.Fatalf("step %d: request %d: %v", i, id, err)
			}
			if rec.Status != core.StatusAssigned {
				continue // deterministic skip on both runs
			}
			if err := r.e.CancelAssigned(id); err != nil {
				r.onCrash(err)
				rec, gerr := r.e.Request(id)
				if gerr != nil {
					r.t.Fatalf("step %d: request after crash: %v", i, gerr)
				}
				if rec.Status != core.StatusDeclined {
					if err := r.e.CancelAssigned(id); err != nil {
						r.t.Fatalf("step %d: cancel retry: %v", i, err)
					}
				}
			}

		case "tick":
			before := r.e.Clock()
			if _, err := r.e.Tick(st.dt); err != nil {
				r.onCrash(err)
				// The tick's record may have been journaled before the
				// crash (a mid-snapshot fault fires after it): re-issue
				// only if the recovered clock shows it was not applied.
				if r.e.Clock() < before+st.dt/2 {
					if _, err := r.e.Tick(st.dt); err != nil {
						r.t.Fatalf("step %d: tick retry: %v", i, err)
					}
				}
			}

		default:
			r.t.Fatalf("unknown script step %q", st.kind)
		}
	}
}

func (r *scriptRunner) declineStep(i int, id core.RequestID) {
	r.t.Helper()
	err := r.e.Decline(id)
	if err == nil {
		return
	}
	r.onCrash(err)
	rec, gerr := r.e.Request(id)
	if gerr != nil {
		r.t.Fatalf("step %d: request after crash: %v", i, gerr)
	}
	if rec.Status != core.StatusDeclined {
		if err := r.e.Decline(id); err != nil {
			r.t.Fatalf("step %d: decline retry: %v", i, err)
		}
	}
}

// assertEquivalent compares a recovered engine against the uncrashed
// reference: lifecycle counts exact, per-request outcomes exact,
// vehicle positions to 1e-9 — and then three more ticks on both, whose
// event streams must match exactly (the kinetic state is equivalent,
// not just the summary).
func assertEquivalent(t *testing.T, got, want *core.Engine, ids map[int]core.RequestID) {
	t.Helper()
	gs, ws := got.Stats(), want.Stats()
	if math.Abs(gs.Clock-ws.Clock) > eps {
		t.Fatalf("clock %v != %v", gs.Clock, ws.Clock)
	}
	if gs.Requests != ws.Requests || gs.Assigned != ws.Assigned ||
		gs.Declined != ws.Declined || gs.Completed != ws.Completed ||
		gs.SharedCompleted != ws.SharedCompleted || gs.ActiveVehicles != ws.ActiveVehicles {
		t.Fatalf("counters diverged:\n got %+v\nwant %+v", gs, ws)
	}
	gv, wv := got.VehicleViews(0), want.VehicleViews(0)
	if len(gv) != len(wv) {
		t.Fatalf("vehicle count %d != %d", len(gv), len(wv))
	}
	for i := range gv {
		if gv[i].ID != wv[i].ID || gv[i].Location != wv[i].Location ||
			gv[i].Onboard != wv[i].Onboard || gv[i].Pending != wv[i].Pending {
			t.Fatalf("vehicle %d diverged: got %+v want %+v", wv[i].ID, gv[i], wv[i])
		}
		if math.Abs(gv[i].X-wv[i].X) > eps || math.Abs(gv[i].Y-wv[i].Y) > eps {
			t.Fatalf("vehicle %d position (%v,%v) != (%v,%v)", wv[i].ID, gv[i].X, gv[i].Y, wv[i].X, wv[i].Y)
		}
	}
	for ref, id := range ids {
		gr, gerr := got.Request(id)
		wr, werr := want.Request(id)
		if gerr != nil || werr != nil {
			t.Fatalf("ref %d id %d: lookup errs %v / %v", ref, id, gerr, werr)
		}
		if gr.Status != wr.Status || gr.Chosen != wr.Chosen || gr.Vehicle != wr.Vehicle ||
			gr.S != wr.S || gr.D != wr.D || len(gr.Options) != len(wr.Options) {
			t.Fatalf("ref %d id %d diverged:\n got %+v\nwant %+v", ref, id, gr, wr)
		}
		if math.Abs(gr.Price-wr.Price) > eps || math.Abs(gr.PlannedPickupOdo-wr.PlannedPickupOdo) > eps {
			t.Fatalf("ref %d id %d price/odo (%v,%v) != (%v,%v)",
				ref, id, gr.Price, gr.PlannedPickupOdo, wr.Price, wr.PlannedPickupOdo)
		}
		for k := range gr.Options {
			if gr.Options[k].Vehicle != wr.Options[k].Vehicle ||
				math.Abs(gr.Options[k].Price-wr.Options[k].Price) > eps ||
				math.Abs(gr.Options[k].PickupDist-wr.Options[k].PickupDist) > eps {
				t.Fatalf("ref %d option %d diverged: got %+v want %+v", ref, k, gr.Options[k], wr.Options[k])
			}
		}
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatalf("recovered engine invariants: %v", err)
	}
	for round := 0; round < 3; round++ {
		ge, gerr := got.Tick(6)
		we, werr := want.Tick(6)
		if gerr != nil || werr != nil {
			t.Fatalf("verify tick %d: errs %v / %v", round, gerr, werr)
		}
		if len(ge) != len(we) {
			t.Fatalf("verify tick %d: %d events != %d", round, len(ge), len(we))
		}
		for k := range ge {
			if ge[k].Kind != we[k].Kind || ge[k].Vehicle != we[k].Vehicle || ge[k].Request != we[k].Request ||
				math.Abs(ge[k].Odo-we[k].Odo) > eps {
				t.Fatalf("verify tick %d event %d: got %+v want %+v", round, k, ge[k], we[k])
			}
		}
	}
}

// referenceRun executes the script on a journal-free engine.
func referenceRun(t *testing.T, steps []scriptStep) (*core.Engine, map[int]core.RequestID) {
	t.Helper()
	ref := &scriptRunner{t: t, e: walEngine(t, wal.ModeOff, "", nil, 0)}
	ref.run(steps)
	return ref.e, ref.ids
}

// TestCrashRecoveryGoldenEquivalence is the tentpole harness: for each
// operation-level crash point, a crash armed at every journal-append
// ordinal must recover into a state equivalent to the uncrashed
// reference run.
func TestCrashRecoveryGoldenEquivalence(t *testing.T) {
	g := testnet.Lattice(rand.New(rand.NewSource(5)), 8, 8, 100)
	steps := buildScript(g.NumVertices())

	for _, point := range []wal.CrashPoint{wal.CrashPreAppend, wal.CrashPostAppend} {
		// The scripted run journals ~45 records (placement, submits,
		// choices, declines, cancels, ticks); sweeping the arm ordinal
		// walks the crash across every operation type. Ordinals beyond
		// the journal length simply never fire (uncrashed control).
		for after := 0; after <= 45; after += 1 {
			t.Run(fmt.Sprintf("%s/after=%d", point, after), func(t *testing.T) {
				dir := t.TempDir()
				inj := &wal.Injector{}
				inj.Arm(point, after)
				run := &scriptRunner{
					t: t,
					e: walEngine(t, wal.ModeSync, dir, inj, 0),
					recover: func() *core.Engine {
						return walEngine(t, wal.ModeSync, dir, nil, 0)
					},
				}
				run.run(steps)
				want, ids := referenceRun(t, steps)
				assertEquivalent(t, run.e, want, ids)
			})
		}
	}
}

// TestCrashRecoveryMidSnapshot crashes inside the snapshot writer: the
// half-written snapshot must be discarded on recovery in favour of the
// previous one plus the full journal tail, with no state loss.
func TestCrashRecoveryMidSnapshot(t *testing.T) {
	g := testnet.Lattice(rand.New(rand.NewSource(5)), 8, 8, 100)
	steps := buildScript(g.NumVertices())
	for after := 0; after < 3; after++ {
		t.Run(fmt.Sprintf("after=%d", after), func(t *testing.T) {
			dir := t.TempDir()
			inj := &wal.Injector{}
			inj.Arm(wal.CrashMidSnapshot, after)
			// Snapshot every 6 records: several snapshots per run, so
			// recovery after the fault exercises the fallback chain.
			run := &scriptRunner{
				t: t,
				e: walEngine(t, wal.ModeSync, dir, inj, 6),
				recover: func() *core.Engine {
					return walEngine(t, wal.ModeSync, dir, nil, 6)
				},
			}
			run.run(steps)
			if !run.crashed {
				t.Fatalf("mid-snapshot fault never fired (snapshot cadence broken?)")
			}
			want, ids := referenceRun(t, steps)
			assertEquivalent(t, run.e, want, ids)
		})
	}
}

// TestCrashRecoverySnapshotCycles runs the script with an aggressive
// snapshot cadence and no faults, restarting between full script runs:
// snapshot+tail recovery must be exactly as good as pure tail replay.
func TestCrashRecoverySnapshotCycles(t *testing.T) {
	dir := t.TempDir()
	steps := buildScript(testnet.Lattice(rand.New(rand.NewSource(5)), 8, 8, 100).NumVertices())
	e := walEngine(t, wal.ModeSync, dir, nil, 5)
	run := &scriptRunner{t: t, e: e}
	run.run(steps)
	ds := e.DurabilityStats()
	if ds.Snapshots == 0 {
		t.Fatalf("no snapshots written at cadence 5: %+v", ds)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got := walEngine(t, wal.ModeSync, dir, nil, 5)
	if !got.Recovered() {
		t.Fatal("engine did not recover")
	}
	want, ids := referenceRun(t, steps)
	assertEquivalent(t, got, want, ids)
	if got.DurabilityStats().ReplayDivergence != 0 {
		t.Fatalf("replay divergence: %+v", got.DurabilityStats())
	}
}

// submitN registers n requests under idempotency keys and returns
// their ids.
func submitN(t *testing.T, e *core.Engine, n int, seed int64) []core.RequestID {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nv := e.Graph().NumVertices()
	ids := make([]core.RequestID, 0, n)
	for i := 0; i < n; i++ {
		s := roadnet.VertexID(rng.Intn(nv))
		d := roadnet.VertexID(rng.Intn(nv))
		for d == s {
			d = roadnet.VertexID(rng.Intn(nv))
		}
		rec, err := e.SubmitIdem(s, d, 1, core.DefaultConstraints(), fmt.Sprintf("c%d", i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, rec.ID)
	}
	return ids
}

// TestRecoveryTornTail truncates the newest segment mid-record: the
// torn record must be dropped, everything before it recovered, and a
// client retry of the lost submission must land on the same id.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	e := walEngine(t, wal.ModeSync, dir, nil, 0)
	ids := submitN(t, e, 3, 17)
	e.Kill()
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Chop into the last record's payload: a torn write.
	if err := wal.TruncateTail(dir, 5); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	got := walEngine(t, wal.ModeSync, dir, nil, 0)
	ds := got.DurabilityStats()
	if !ds.Recovered || ds.RecoveredTruncatedBytes == 0 {
		t.Fatalf("truncation not detected: %+v", ds)
	}
	if _, err := got.Request(ids[2]); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("torn submit %d survived recovery (err %v)", ids[2], err)
	}
	if _, err := got.Request(ids[1]); err != nil {
		t.Fatalf("intact submit %d lost: %v", ids[1], err)
	}
	// The client retries the unacknowledged submission; the id sequence
	// must continue where the journal ends — re-using the torn id.
	rec, err := got.SubmitIdem(10, 20, 1, core.DefaultConstraints(), "c2-retry")
	if err != nil {
		t.Fatalf("retry submit: %v", err)
	}
	if rec.ID != ids[2] {
		t.Fatalf("retried submit got id %d, want %d", rec.ID, ids[2])
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryFlippedByte corrupts a byte inside the newest record's
// payload: the checksum must reject it and recovery must truncate
// there, exactly like a torn write.
func TestRecoveryFlippedByte(t *testing.T) {
	dir := t.TempDir()
	e := walEngine(t, wal.ModeSync, dir, nil, 0)
	ids := submitN(t, e, 3, 23)
	e.Kill()
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := wal.FlipByte(dir, -10); err != nil {
		t.Fatalf("flip: %v", err)
	}
	got := walEngine(t, wal.ModeSync, dir, nil, 0)
	ds := got.DurabilityStats()
	if !ds.Recovered || ds.RecoveredTruncatedBytes == 0 {
		t.Fatalf("corruption not detected: %+v", ds)
	}
	if _, err := got.Request(ids[2]); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("corrupt record %d survived recovery (err %v)", ids[2], err)
	}
	if _, err := got.Request(ids[1]); err != nil {
		t.Fatalf("intact record %d lost: %v", ids[1], err)
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncCrashLosesOnlySuffix pins async mode's contract: a crash may
// lose acknowledged operations, but only a suffix — the recovered
// ledger is always a prefix of the submission order.
func TestAsyncCrashLosesOnlySuffix(t *testing.T) {
	dir := t.TempDir()
	e := walEngine(t, wal.ModeAsync, dir, nil, 0)
	ids := submitN(t, e, 20, 31)
	e.Kill()
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got := walEngine(t, wal.ModeAsync, dir, nil, 0)
	survived := 0
	for i, id := range ids {
		_, err := got.Request(id)
		switch {
		case err == nil:
			if survived != i {
				t.Fatalf("submission %d survived after %d was lost — not a prefix", i, survived)
			}
			survived++
		case errors.Is(err, core.ErrNotFound):
			// lost suffix
		default:
			t.Fatalf("request %d: %v", id, err)
		}
	}
	t.Logf("async crash: %d/%d submissions survived", survived, len(ids))
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelAssignedAfterRestart is the restart-path audit for the
// relay compensation primitive: cancelling a journaled assignment on a
// freshly recovered engine must release the vehicle cleanly, and a
// second cancel must fail with a typed error — never panic (recovery
// calls it status-checked, but defence matters on this path).
func TestCancelAssignedAfterRestart(t *testing.T) {
	dir := t.TempDir()
	e := walEngine(t, wal.ModeSync, dir, nil, 0)
	rec := submitWithOptions(t, e, 41)
	if err := e.Choose(rec.ID, 0); err != nil {
		t.Fatalf("choose: %v", err)
	}
	veh := rec.Options[0].Vehicle
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	got := walEngine(t, wal.ModeSync, dir, nil, 0)
	if !got.Recovered() {
		t.Fatal("engine did not recover")
	}
	if n := vehiclePending(t, got, fleet.VehicleID(veh)); n == 0 {
		t.Fatalf("recovered vehicle %d shows no pending stops", veh)
	}
	if err := got.CancelAssigned(rec.ID); err != nil {
		t.Fatalf("cancel after restart: %v", err)
	}
	if n := vehiclePending(t, got, fleet.VehicleID(veh)); n != 0 {
		t.Fatalf("vehicle %d still has %d pending stops after cancel", veh, n)
	}
	if err := got.CancelAssigned(rec.ID); err == nil {
		t.Fatal("second cancel succeeded; want typed error")
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// And the cancellation itself is durable.
	again := walEngine(t, wal.ModeSync, dir, nil, 0)
	r2, err := again.Request(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Status != core.StatusDeclined {
		t.Fatalf("cancelled request recovered as %v", r2.Status)
	}
	if n := vehiclePending(t, again, fleet.VehicleID(veh)); n != 0 {
		t.Fatalf("vehicle %d leaked %d stops across the second restart", veh, n)
	}
}

// TestSubmitIdempotencyKey pins the satellite contract: a repeated
// Idempotency-Key returns the original record without registering a
// second request, across statuses and across a restart.
func TestSubmitIdempotencyKey(t *testing.T) {
	dir := t.TempDir()
	e := walEngine(t, wal.ModeSync, dir, nil, 0)
	rec, err := e.SubmitIdem(3, 40, 1, core.DefaultConstraints(), "once")
	if err != nil {
		t.Fatal(err)
	}
	before := e.Stats().Requests
	dup, err := e.SubmitIdem(7, 12, 1, core.DefaultConstraints(), "once") // different endpoints, same key
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != rec.ID || dup.S != rec.S || dup.D != rec.D {
		t.Fatalf("duplicate key returned %+v, want the original %+v", dup, rec)
	}
	if after := e.Stats().Requests; after != before {
		t.Fatalf("duplicate submission counted: %d → %d", before, after)
	}
	// The mapping survives a restart (journaled with the submit).
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	got := walEngine(t, wal.ModeSync, dir, nil, 0)
	dup2, err := got.SubmitIdem(9, 9, 1, core.DefaultConstraints(), "once")
	if err != nil {
		t.Fatal(err)
	}
	if dup2.ID != rec.ID {
		t.Fatalf("key lost across restart: got id %d, want %d", dup2.ID, rec.ID)
	}
}

// TestDurabilityStatsPanel sanity-checks the /v1/stats durability
// panel: journal counters move, mode is reported, and a recovery is
// visible.
func TestDurabilityStatsPanel(t *testing.T) {
	dir := t.TempDir()
	e := walEngine(t, wal.ModeSync, dir, nil, 0)
	submitN(t, e, 3, 53)
	ds := e.Stats().Durability
	if ds.Mode != "sync" || ds.Records == 0 || ds.Fsyncs == 0 {
		t.Fatalf("live panel: %+v", ds)
	}
	if err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if ds = e.DurabilityStats(); ds.Snapshots != 1 || ds.LastSnapshotSeg == 0 {
		t.Fatalf("snapshot panel: %+v", ds)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	got := walEngine(t, wal.ModeSync, dir, nil, 0)
	if ds = got.DurabilityStats(); !ds.Recovered {
		t.Fatalf("recovery panel: %+v", ds)
	}
	off := walEngine(t, wal.ModeOff, "", nil, 0)
	if ds = off.Stats().Durability; ds.Mode != "off" || ds.Records != 0 {
		t.Fatalf("off panel: %+v", ds)
	}
}
