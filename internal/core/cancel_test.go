package core_test

// Tests for the assignment-release primitive (Engine.CancelAssigned,
// the relay two-phase commit's compensation) and the commit-protocol
// effectiveness counters (fleet.CommitStats through Engine.Stats).

import (
	"math/rand"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/fleet"
	"ptrider/internal/roadnet"
)

// submitWithOptions submits random requests until one quotes options.
func submitWithOptions(t *testing.T, e *core.Engine, seed int64) *core.RequestRecord {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := e.Graph().NumVertices()
	for attempt := 0; attempt < 100; attempt++ {
		s := roadnet.VertexID(rng.Intn(n))
		d := roadnet.VertexID(rng.Intn(n))
		if s == d {
			continue
		}
		rec, err := e.Submit(s, d, 1)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if len(rec.Options) > 0 {
			return rec
		}
		_ = e.Decline(rec.ID)
	}
	t.Fatal("no request quoted options")
	return nil
}

func vehiclePending(t *testing.T, e *core.Engine, id fleet.VehicleID) int {
	t.Helper()
	for _, v := range e.VehicleViews(0) {
		if v.ID == id {
			return v.Pending
		}
	}
	t.Fatalf("vehicle %d not in views", id)
	return 0
}

func TestCancelAssignedReleasesReservation(t *testing.T) {
	e := latticeEngine(t, 77, 8, 8, core.Config{Capacity: 4})
	e.AddVehiclesUniform(6)
	rec := submitWithOptions(t, e, 78)
	if err := e.Choose(rec.ID, 0); err != nil {
		t.Fatalf("choose: %v", err)
	}
	veh := rec.Options[0].Vehicle
	if got := vehiclePending(t, e, veh); got != 1 {
		t.Fatalf("vehicle holds %d pending requests after choose, want 1", got)
	}
	before := e.Stats()

	if err := e.CancelAssigned(rec.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	after, err := e.Request(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Status != core.StatusDeclined {
		t.Fatalf("cancelled record is %v, want declined", after.Status)
	}
	if got := vehiclePending(t, e, veh); got != 0 {
		t.Fatalf("vehicle still holds %d pending requests after cancel", got)
	}
	st := e.Stats()
	if st.Assigned != before.Assigned-1 || st.Declined != before.Declined+1 {
		t.Fatalf("counters after cancel: assigned %d→%d, declined %d→%d",
			before.Assigned, st.Assigned, before.Declined, st.Declined)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Cancelling again — or a merely quoted record — is refused.
	if err := e.CancelAssigned(rec.ID); err == nil {
		t.Fatal("double cancel succeeded")
	}
	quoted := submitWithOptions(t, e, 79)
	if err := e.CancelAssigned(quoted.ID); err == nil {
		t.Fatal("cancel of a quoted record succeeded")
	}
}

func TestCancelAssignedRefusesOnboardRider(t *testing.T) {
	e := latticeEngine(t, 80, 8, 8, core.Config{Capacity: 4, CommitSlack: 0.5})
	e.AddVehiclesUniform(6)
	rec := submitWithOptions(t, e, 81)
	if err := e.Choose(rec.ID, 0); err != nil {
		t.Fatalf("choose: %v", err)
	}
	// Tick until the pickup fires; then the rider is physically in the
	// car and the cancellation must refuse.
	for tick := 0; tick < 4000; tick++ {
		if _, err := e.Tick(1); err != nil {
			t.Fatal(err)
		}
		cur, err := e.Request(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Status == core.StatusOnboard {
			if err := e.CancelAssigned(rec.ID); err == nil {
				t.Fatal("cancelled an onboard rider")
			}
			cur, err = e.Request(rec.ID)
			if err != nil {
				t.Fatal(err)
			}
			if cur.Status != core.StatusOnboard {
				t.Fatalf("failed cancel changed status to %v", cur.Status)
			}
			return
		}
		if cur.Status == core.StatusCompleted {
			t.Skip("trip completed within one tick; pickup window not observable")
		}
	}
	t.Fatal("pickup never fired")
}

// TestCommitStatsCounters pins the commit-protocol counters: a stale
// candidate with zero slack counts one probe-decline and no re-probe;
// with slack it additionally counts the re-probe and — when a fresh
// candidate stays within the slack — the salvaged commit. Staleness is
// manufactured by quoting under a tight waiting budget and letting the
// fleet roam before choosing (the quoted pick-up distance anchors the
// deadline, so a vehicle that wandered off invalidates it); each
// attempt is probabilistic, so the tests drive attempts until the
// counter moves.
func TestCommitStatsCounters(t *testing.T) {
	t.Run("strict", func(t *testing.T) {
		e := latticeEngine(t, 82, 16, 16, core.Config{Capacity: 4, MaxWaitSeconds: 10})
		e.AddVehiclesUniform(4)
		for attempt := 0; attempt < 40; attempt++ {
			rec := submitWithOptions(t, e, 83+int64(attempt))
			if _, err := e.Tick(180); err != nil {
				t.Fatal(err)
			}
			if err := e.Choose(rec.ID, 0); err != nil {
				st := e.Stats()
				if st.CommitStale == 0 {
					t.Fatalf("failed choose did not count a stale commit: %+v", st)
				}
				if st.Reprobes != 0 || st.ReprobeCommits != 0 {
					t.Fatalf("strict engine re-probed: %d/%d", st.Reprobes, st.ReprobeCommits)
				}
				return
			}
		}
		t.Fatal("no stale commit in 40 roaming attempts")
	})
	t.Run("slack", func(t *testing.T) {
		e := latticeEngine(t, 84, 16, 16, core.Config{Capacity: 4, MaxWaitSeconds: 10, CommitSlack: 100})
		e.AddVehiclesUniform(4)
		for attempt := 0; attempt < 40; attempt++ {
			rec := submitWithOptions(t, e, 85+int64(attempt))
			if _, err := e.Tick(180); err != nil {
				t.Fatal(err)
			}
			err := e.Choose(rec.ID, 0)
			st := e.Stats()
			if st.CommitStale == 0 {
				continue // candidate survived; roam again
			}
			if st.Reprobes != st.CommitStale {
				t.Fatalf("stale commits %d but re-probes %d under slack", st.CommitStale, st.Reprobes)
			}
			if err == nil && st.ReprobeCommits == 0 {
				t.Fatalf("salvaged choose did not count: %+v", st)
			}
			if st.ReprobeCommits > 0 {
				if err != nil {
					t.Fatalf("salvage counted but choose failed: %v", err)
				}
				return
			}
		}
		t.Fatal("no salvaged commit in 40 roaming attempts")
	})
}
