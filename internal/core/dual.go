package core

import (
	"math"

	"ptrider/internal/fleet"
)

// DualSideMatcher implements the dual-side search algorithm (paper
// §3.3): in addition to the single-side ring expansion from the start
// location s, a second ring expands from the destination d in lockstep.
// A non-empty vehicle discovered near s whose schedule has not yet been
// discovered from the d side at radius L_d is certifiably far from d:
// every schedule location x has dist(x, d) ≥ L_d, so inserting d into
// any gap (x, y) costs at least 2·L_d − dist(x, y) extra distance, and
// appending it costs at least L_d. That detour lower bound
//
//	ΔLB = max(0, min(L_d, 2·L_d − maxLeg))
//
// often dominates such vehicles out of consideration without a
// kinetic-tree insertion probe — exactly the paper's scenario of a
// schedule "near the start location but far from the destination".
// Vehicles that survive the bound are deferred; when the s-side
// expansion finishes, survivors are re-tested against the final skyline
// and verified only if still potentially non-dominated (concurrently,
// with MatchWorkers > 1).
//
// The matcher is stateless; per-match workspace comes from the shared
// scratch pool, so concurrent Match calls are safe.
type DualSideMatcher struct {
	ctx *matchContext
}

func newDualSideMatcher(ctx *matchContext) *DualSideMatcher {
	return &DualSideMatcher{ctx: ctx}
}

// Name implements Matcher.
func (m *DualSideMatcher) Name() string { return "dual-side" }

// pendingVehicle is a vehicle deferred by the d-side bound, with the
// probe state captured at deferral time.
type pendingVehicle struct {
	v        *fleet.Vehicle
	pickupLB float64
	maxLeg   float64
}

// detourLB returns the d-side detour lower bound for a vehicle none of
// whose registered cells has been reached by the d-ring at radius ld.
func detourLB(ld, maxLeg float64) float64 {
	lb := math.Min(ld, 2*ld-maxLeg)
	if lb < 0 {
		return 0
	}
	return lb
}

// Match implements Matcher.
func (m *DualSideMatcher) Match(spec *ReqSpec, stats *MatchStats) []Option {
	ctx := m.ctx
	before := ctx.metric.DistCalls()
	defer func() { stats.DistCalls += ctx.metric.DistCalls() - before }()

	sc := ctx.getScratch()
	defer ctx.putScratch(sc)

	src := ctx.grid().CellOf(spec.Kin.S)
	dst := ctx.grid().CellOf(spec.Kin.D)
	sRing := ctx.grid().Cell(src).Ring
	dRing := ctx.grid().Cell(dst).Ring
	n := ctx.fleet.NumVehicles()
	sc.visit.begin(n)
	sc.dseen.begin(n)

	sky := &sc.sky
	sky.Reset()
	es := newEmptyScan()
	nonEmptyDone := false
	pending := sc.pending[:0]

	di := 0
	ld := 0.0 // every vehicle not d-seen has all schedule locations ≥ ld from d

	for _, entry := range sRing {
		L := entry.LB
		if L > spec.MaxPickupDist {
			break
		}
		// Advance the d-ring in lockstep so ld grows with L.
		for di < len(dRing) && dRing[di].LB <= L {
			sc.ids = ctx.lists.AppendNonEmpty(dRing[di].Cell, sc.ids[:0])
			for _, id := range sc.ids {
				sc.dseen.mark(id)
			}
			stats.CellsScanned++
			di++
		}
		if di < len(dRing) {
			ld = dRing[di].LB
		} else {
			ld = math.Inf(1)
		}

		emptyDone := es.terminateAt(L, spec, sky)
		if !nonEmptyDone && sky.IsDominated(L, spec.MinPrice) {
			nonEmptyDone = true
		}
		if emptyDone && nonEmptyDone {
			break
		}
		stats.CellsScanned++

		if !emptyDone {
			es.scanCell(ctx, sc, entry.Cell, spec, sky, stats)
		}
		if !nonEmptyDone {
			sc.ids = ctx.lists.AppendNonEmpty(entry.Cell, sc.ids[:0])
			for _, id := range sc.ids {
				if !sc.visit.first(id) {
					continue
				}
				v, err := ctx.fleet.Vehicle(id)
				if err != nil {
					continue
				}
				loc, maxLeg, active := v.ProbeState()
				if !active {
					continue
				}
				pickupLB := ctx.metric.LB(loc, spec.Kin.S)
				if pickupLB > spec.MaxPickupDist || sky.IsDominated(pickupLB, spec.MinPrice) {
					stats.PrunedVehicles++
					continue
				}
				if sc.dseen.seen(id) {
					sc.batch = append(sc.batch, v)
					continue
				}
				// Certifiably far from d at radius ld: price floor rises.
				dlb := detourLB(ld, maxLeg)
				if sky.IsDominated(pickupLB, spec.Ratio*(spec.Kin.SD+dlb)) {
					stats.PrunedVehicles++
					continue
				}
				pending = append(pending, pendingVehicle{v: v, pickupLB: pickupLB, maxLeg: maxLeg})
			}
			ctx.flushBatch(sc, spec, sky, stats)
		}
	}

	// Flush deferred vehicles against the final skyline and d-frontier.
	for _, p := range pending {
		if sky.IsDominated(p.pickupLB, spec.MinPrice) {
			stats.PrunedVehicles++
			continue
		}
		if !sc.dseen.seen(p.v.ID) {
			dlb := detourLB(ld, p.maxLeg)
			if sky.IsDominated(p.pickupLB, spec.Ratio*(spec.Kin.SD+dlb)) {
				stats.PrunedVehicles++
				continue
			}
		}
		sc.batch = append(sc.batch, p.v)
	}
	ctx.flushBatch(sc, spec, sky, stats)
	sc.pending = pending[:0]

	es.finish(spec, sky)
	return skylineOptions(sky, stats)
}
