package core

import (
	"math"

	"ptrider/internal/fleet"
	"ptrider/internal/skyline"
)

// DualSideMatcher implements the dual-side search algorithm (paper
// §3.3): in addition to the single-side ring expansion from the start
// location s, a second ring expands from the destination d in lockstep.
// A non-empty vehicle discovered near s whose schedule has not yet been
// discovered from the d side at radius L_d is certifiably far from d:
// every schedule location x has dist(x, d) ≥ L_d, so inserting d into
// any gap (x, y) costs at least 2·L_d − dist(x, y) extra distance, and
// appending it costs at least L_d. That detour lower bound
//
//	ΔLB = max(0, min(L_d, 2·L_d − maxLeg))
//
// often dominates such vehicles out of consideration without a
// kinetic-tree insertion — exactly the paper's scenario of a schedule
// "near the start location but far from the destination". Vehicles that
// survive the bound are deferred; when the s-side expansion finishes,
// survivors are re-tested against the final skyline and verified only
// if still potentially non-dominated.
type DualSideMatcher struct {
	ctx *matchContext

	visitStamp []uint32 // s-side discovery
	dSeenStamp []uint32 // d-side discovery
	epoch      uint32
}

func newDualSideMatcher(ctx *matchContext) *DualSideMatcher {
	return &DualSideMatcher{ctx: ctx}
}

// Name implements Matcher.
func (m *DualSideMatcher) Name() string { return "dual-side" }

func (m *DualSideMatcher) begin(n int) {
	if len(m.visitStamp) < n {
		grownV := make([]uint32, n)
		copy(grownV, m.visitStamp)
		m.visitStamp = grownV
		grownD := make([]uint32, n)
		copy(grownD, m.dSeenStamp)
		m.dSeenStamp = grownD
	}
	m.epoch++
	if m.epoch == 0 {
		for i := range m.visitStamp {
			m.visitStamp[i] = 0
			m.dSeenStamp[i] = 0
		}
		m.epoch = 1
	}
}

func (m *DualSideMatcher) firstVisit(id fleet.VehicleID) bool {
	if m.visitStamp[id] == m.epoch {
		return false
	}
	m.visitStamp[id] = m.epoch
	return true
}

func (m *DualSideMatcher) dSeen(id fleet.VehicleID) bool { return m.dSeenStamp[id] == m.epoch }

// pendingVehicle is a vehicle deferred by the d-side bound.
type pendingVehicle struct {
	v        *fleet.Vehicle
	pickupLB float64
}

// detourLB returns the d-side detour lower bound for a vehicle none of
// whose registered cells has been reached by the d-ring at radius ld.
func detourLB(ld, maxLeg float64) float64 {
	lb := math.Min(ld, 2*ld-maxLeg)
	if lb < 0 {
		return 0
	}
	return lb
}

// Match implements Matcher.
func (m *DualSideMatcher) Match(spec *ReqSpec, stats *MatchStats) []Option {
	ctx := m.ctx
	before := ctx.metric.DistCalls()
	defer func() { stats.DistCalls += ctx.metric.DistCalls() - before }()

	src := ctx.grid.CellOf(spec.Kin.S)
	dst := ctx.grid.CellOf(spec.Kin.D)
	sRing := ctx.grid.Cell(src).Ring
	dRing := ctx.grid.Cell(dst).Ring
	m.begin(ctx.fleet.NumVehicles())

	var sky skyline.Skyline[Option]
	es := newEmptyScan()
	nonEmptyDone := false
	var pending []pendingVehicle

	di := 0
	ld := 0.0 // every vehicle not d-seen has all schedule locations ≥ ld from d

	for _, entry := range sRing {
		L := entry.LB
		if L > spec.MaxPickupDist {
			break
		}
		// Advance the d-ring in lockstep so ld grows with L.
		for di < len(dRing) && dRing[di].LB <= L {
			for _, id := range ctx.lists.NonEmpty(dRing[di].Cell) {
				m.dSeenStamp[id] = m.epoch
			}
			stats.CellsScanned++
			di++
		}
		if di < len(dRing) {
			ld = dRing[di].LB
		} else {
			ld = math.Inf(1)
		}

		emptyDone := es.terminateAt(L, spec, &sky)
		if !nonEmptyDone && sky.IsDominated(L, spec.MinPrice) {
			nonEmptyDone = true
		}
		if emptyDone && nonEmptyDone {
			break
		}
		stats.CellsScanned++

		if !emptyDone {
			es.scanCell(ctx, entry.Cell, spec, &sky, stats)
		}
		if !nonEmptyDone {
			for _, id := range ctx.lists.NonEmpty(entry.Cell) {
				if !m.firstVisit(id) {
					continue
				}
				v, err := ctx.fleet.Vehicle(id)
				if err != nil {
					continue
				}
				pickupLB := ctx.metric.LB(v.Loc(), spec.Kin.S)
				if pickupLB > spec.MaxPickupDist || sky.IsDominated(pickupLB, spec.MinPrice) {
					stats.PrunedVehicles++
					continue
				}
				if m.dSeen(id) {
					quoteVehicle(v, spec, &sky, stats)
					continue
				}
				// Certifiably far from d at radius ld: price floor rises.
				dlb := detourLB(ld, v.Tree.MaxLegUpper())
				if sky.IsDominated(pickupLB, spec.Ratio*(spec.Kin.SD+dlb)) {
					stats.PrunedVehicles++
					continue
				}
				pending = append(pending, pendingVehicle{v: v, pickupLB: pickupLB})
			}
		}
	}

	// Flush deferred vehicles against the final skyline and d-frontier.
	for _, p := range pending {
		if sky.IsDominated(p.pickupLB, spec.MinPrice) {
			stats.PrunedVehicles++
			continue
		}
		if !m.dSeen(p.v.ID) {
			dlb := detourLB(ld, p.v.Tree.MaxLegUpper())
			if sky.IsDominated(p.pickupLB, spec.Ratio*(spec.Kin.SD+dlb)) {
				stats.PrunedVehicles++
				continue
			}
		}
		quoteVehicle(p.v, spec, &sky, stats)
	}

	es.finish(spec, &sky)
	return skylineOptions(&sky, stats)
}
