package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/gridindex"
	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
)

// goldenPair builds two engines over the same network, seed and
// configuration, differing only in MatchWorkers: serial (1) vs
// parallel (4).
func goldenPair(t *testing.T, algo core.Algorithm) (serial, parallel *core.Engine) {
	t.Helper()
	mk := func(workers int) *core.Engine {
		g := testnet.Lattice(rand.New(rand.NewSource(77)), 12, 12, 100)
		e, err := core.NewEngine(g, core.Config{
			GridCols: 6, GridRows: 6,
			Capacity: 4, Sigma: 0.4, MaxWaitSeconds: 300,
			Algorithm:    algo,
			Seed:         77,
			MatchWorkers: workers,
		})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		e.AddVehiclesUniform(30)
		return e
	}
	return mk(1), mk(4)
}

// coordEq compares one option coordinate across two engines. Exact
// computations are deterministic per engine, but two engines may
// legitimately resolve the same vertex pair through different flows
// first (a point A* search vs a multi-target Dijkstra pass — same
// exact distance, opposite summation order), so coordinates built from
// such collision pairs can differ by floating-point ulps. Structure —
// option count, order, vehicles, schedules — must still match exactly;
// only the float coordinates get a relative tolerance far below any
// physical significance.
func coordEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= scale*1e-9
}

func sameOptions(t *testing.T, step int, a, b []core.Option) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("step %d: serial %d options, parallel %d", step, len(a), len(b))
	}
	for i := range a {
		if a[i].Vehicle != b[i].Vehicle {
			t.Fatalf("step %d option %d: vehicle %d vs %d", step, i, a[i].Vehicle, b[i].Vehicle)
		}
		if !coordEq(a[i].PickupDist, b[i].PickupDist) || !coordEq(a[i].Price, b[i].Price) {
			t.Fatalf("step %d option %d: (%v, %v) vs (%v, %v)",
				step, i, a[i].PickupDist, a[i].Price, b[i].PickupDist, b[i].Price)
		}
		if len(a[i].Candidate.Seq) != len(b[i].Candidate.Seq) {
			t.Fatalf("step %d option %d: schedule lengths %d vs %d",
				step, i, len(a[i].Candidate.Seq), len(b[i].Candidate.Seq))
		}
		for j := range a[i].Candidate.Seq {
			if a[i].Candidate.Seq[j] != b[i].Candidate.Seq[j] {
				t.Fatalf("step %d option %d stop %d: %+v vs %+v",
					step, i, j, a[i].Candidate.Seq[j], b[i].Candidate.Seq[j])
			}
		}
	}
}

// TestGoldenSerialVsParallel pins the refactor's no-behavioural-drift
// guarantee: for a fixed seed and workload, the skyline option sets of
// the serial matcher (MatchWorkers=1, the reference algorithm) and the
// parallel matcher (MatchWorkers=4, batched probes folded in discovery
// order) are identical at every step — same vehicles, bit-identical
// pick-up distances and prices, same planned schedules. Both engines
// evolve through identical choices and ticks, so any divergence
// compounds and is caught.
func TestGoldenSerialVsParallel(t *testing.T) {
	for _, algo := range []core.Algorithm{core.AlgoNaive, core.AlgoSingleSide, core.AlgoDualSide} {
		t.Run(algo.String(), func(t *testing.T) {
			es, ep := goldenPair(t, algo)
			n := es.Graph().NumVertices()
			rng := rand.New(rand.NewSource(99))
			for step := 0; step < 120; step++ {
				s := roadnet.VertexID(rng.Intn(n))
				d := roadnet.VertexID(rng.Intn(n))
				riders := 1 + rng.Intn(3)
				if s == d {
					continue
				}
				rs, errS := es.Submit(s, d, riders)
				rp, errP := ep.Submit(s, d, riders)
				if (errS == nil) != (errP == nil) {
					t.Fatalf("step %d: serial err %v, parallel err %v", step, errS, errP)
				}
				if errS != nil {
					continue
				}
				sameOptions(t, step, rs.Options, rp.Options)

				// Evolve both fleets identically.
				if len(rs.Options) > 0 && rng.Intn(2) == 0 {
					pick := rng.Intn(len(rs.Options))
					cs := es.Choose(rs.ID, pick)
					cp := ep.Choose(rp.ID, pick)
					if (cs == nil) != (cp == nil) {
						t.Fatalf("step %d: serial choose %v, parallel choose %v", step, cs, cp)
					}
				} else {
					_ = es.Decline(rs.ID)
					_ = ep.Decline(rp.ID)
				}
				if rng.Intn(4) == 0 {
					if _, err := es.Tick(5); err != nil {
						t.Fatalf("serial tick: %v", err)
					}
					if _, err := ep.Tick(5); err != nil {
						t.Fatalf("parallel tick: %v", err)
					}
				}
			}
			ss, sp := es.Stats(), ep.Stats()
			if ss.Requests != sp.Requests || ss.Assigned != sp.Assigned || ss.Completed != sp.Completed {
				t.Fatalf("lifecycles diverged: serial %+v parallel %+v", ss, sp)
			}
		})
	}
}

// batchPair builds two engines over the same network, seed,
// configuration and worker count, then loads both with an identical
// prefix of committed trips and movement so non-empty vehicles exist.
func batchPair(t *testing.T, algo core.Algorithm, workers int) (a, b *core.Engine) {
	t.Helper()
	mk := func() *core.Engine {
		g := testnet.Lattice(rand.New(rand.NewSource(77)), 12, 12, 100)
		e, err := core.NewEngine(g, core.Config{
			GridCols: 6, GridRows: 6,
			Capacity: 4, Sigma: 0.4, MaxWaitSeconds: 300,
			Algorithm:    algo,
			Seed:         77,
			MatchWorkers: workers,
		})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		e.AddVehiclesUniform(30)
		return e
	}
	a, b = mk(), mk()
	n := a.Graph().NumVertices()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		s := roadnet.VertexID(rng.Intn(n))
		d := roadnet.VertexID(rng.Intn(n))
		if s == d {
			continue
		}
		ra, errA := a.Submit(s, d, 1)
		rb, errB := b.Submit(s, d, 1)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("load %d: %v vs %v", i, errA, errB)
		}
		if errA != nil {
			continue
		}
		if len(ra.Options) > 0 && rng.Intn(2) == 0 {
			ca := a.Choose(ra.ID, 0)
			cb := b.Choose(rb.ID, 0)
			if (ca == nil) != (cb == nil) {
				t.Fatalf("load %d: choose %v vs %v", i, ca, cb)
			}
		}
		if rng.Intn(3) == 0 {
			if _, err := a.Tick(3); err != nil {
				t.Fatalf("tick a: %v", err)
			}
			if _, err := b.Tick(3); err != nil {
				t.Fatalf("tick b: %v", err)
			}
		}
	}
	return a, b
}

// hotcellItems builds k quote-only batch items whose origins all fall
// in one (well-populated) grid cell — the coalesced path's target
// workload.
func hotcellItems(e *core.Engine, seed int64, k int) []core.BatchItem {
	grid := e.Grid()
	best := gridindex.CellID(0)
	for c := 0; c < grid.NumCells(); c++ {
		if len(grid.Cell(gridindex.CellID(c)).Vertices) > len(grid.Cell(best).Vertices) {
			best = gridindex.CellID(c)
		}
	}
	verts := grid.Cell(best).Vertices
	rng := rand.New(rand.NewSource(seed))
	n := e.Graph().NumVertices()
	items := make([]core.BatchItem, 0, k)
	for len(items) < k {
		s := verts[rng.Intn(len(verts))]
		d := roadnet.VertexID(rng.Intn(n))
		if s == d {
			continue
		}
		items = append(items, core.BatchItem{
			S: s, D: d, Riders: 1 + rng.Intn(3),
			Constraints: core.DefaultConstraints(),
		})
	}
	return items
}

// TestGoldenBatchVsPerRequest pins the coalesced pipeline's
// no-behavioural-drift guarantee: a quote-only SubmitBatch whose items
// share an origin cell (one shared ring frontier, multi-target distance
// passes) returns, per item, the option set per-request Submit computes
// over the same world — same vehicles, same planned schedules, same
// option count and order, coordinates equal up to the ulp-level
// tolerance coordEq documents. Covered for every algorithm and for
// both the serial and the parallel probe paths.
func TestGoldenBatchVsPerRequest(t *testing.T) {
	for _, algo := range []core.Algorithm{core.AlgoNaive, core.AlgoSingleSide, core.AlgoDualSide} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/workers=%d", algo, workers), func(t *testing.T) {
				a, b := batchPair(t, algo, workers)
				items := hotcellItems(a, 41, 10)
				recs, err := a.SubmitBatch(items)
				if err != nil {
					t.Fatalf("batch: %v", err)
				}
				for i, it := range items {
					rb, err := b.Submit(it.S, it.D, it.Riders)
					if err != nil {
						t.Fatalf("item %d: per-request submit: %v", i, err)
					}
					if recs[i] == nil {
						t.Fatalf("item %d: nil batch record", i)
					}
					sameOptions(t, i, rb.Options, recs[i].Options)
					if err := b.Decline(rb.ID); err != nil {
						t.Fatalf("item %d decline: %v", i, err)
					}
				}

				// Scattered origins exercise the per-wave grouping (several
				// groups, some singleton).
				rng := rand.New(rand.NewSource(43))
				n := a.Graph().NumVertices()
				var mixed []core.BatchItem
				for len(mixed) < 8 {
					s := roadnet.VertexID(rng.Intn(n))
					d := roadnet.VertexID(rng.Intn(n))
					if s == d {
						continue
					}
					mixed = append(mixed, core.BatchItem{S: s, D: d, Riders: 1, Constraints: core.DefaultConstraints()})
				}
				recs, err = a.SubmitBatch(mixed)
				if err != nil {
					t.Fatalf("mixed batch: %v", err)
				}
				for i, it := range mixed {
					rb, err := b.Submit(it.S, it.D, it.Riders)
					if err != nil {
						t.Fatalf("mixed %d: %v", i, err)
					}
					sameOptions(t, 100+i, rb.Options, recs[i].Options)
					_ = b.Decline(rb.ID)
				}
			})
		}
	}
}

// TestGoldenBatchGreedyCommits pins the wave pipeline's greedy
// semantics: a committing SubmitBatch must behave exactly like the
// sequential submit-then-choose loop — every commitment visible to all
// later quotes, assignments landing on the same vehicles at the same
// prices.
func TestGoldenBatchGreedyCommits(t *testing.T) {
	for _, algo := range []core.Algorithm{core.AlgoSingleSide, core.AlgoDualSide} {
		t.Run(algo.String(), func(t *testing.T) {
			a, b := batchPair(t, algo, 4)
			items := hotcellItems(a, 47, 8)
			for i := range items {
				items[i].Choose = func(opts []core.Option) int {
					if len(opts) == 0 {
						return -1
					}
					return 0
				}
			}
			recs, err := a.SubmitBatch(items)
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
			for i, it := range items {
				rb, err := b.Submit(it.S, it.D, it.Riders)
				if err != nil {
					t.Fatalf("item %d: %v", i, err)
				}
				sameOptions(t, i, rb.Options, recs[i].Options)
				if len(rb.Options) > 0 {
					if err := b.Choose(rb.ID, 0); err != nil {
						t.Fatalf("item %d choose: %v", i, err)
					}
				} else {
					_ = b.Decline(rb.ID)
				}
				fresh, _ := b.Request(rb.ID)
				if recs[i].Status != fresh.Status {
					t.Fatalf("item %d: batch status %v, sequential %v", i, recs[i].Status, fresh.Status)
				}
				if recs[i].Status == core.StatusAssigned {
					if recs[i].Vehicle != fresh.Vehicle || !coordEq(recs[i].Price, fresh.Price) {
						t.Fatalf("item %d: batch assigned (%d, %v), sequential (%d, %v)",
							i, recs[i].Vehicle, recs[i].Price, fresh.Vehicle, fresh.Price)
					}
				}
			}
			sa, sb := a.Stats(), b.Stats()
			if sa.Assigned != sb.Assigned || sa.Declined != sb.Declined {
				t.Fatalf("lifecycles diverged: batch %+v sequential %+v", sa, sb)
			}
		})
	}
}

// TestGoldenMatchOnceAcrossWorkers cross-checks MatchOnce (the
// benchmark entry point) between worker counts on a loaded fleet.
func TestGoldenMatchOnceAcrossWorkers(t *testing.T) {
	es, ep := goldenPair(t, core.AlgoDualSide)
	n := es.Graph().NumVertices()
	// Load both fleets identically.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		s := roadnet.VertexID(rng.Intn(n))
		d := roadnet.VertexID(rng.Intn(n))
		if s == d {
			continue
		}
		rs, errS := es.Submit(s, d, 1)
		rp, errP := ep.Submit(s, d, 1)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("load %d: %v vs %v", i, errS, errP)
		}
		if errS != nil || len(rs.Options) == 0 {
			continue
		}
		if es.Choose(rs.ID, 0) == nil {
			if err := ep.Choose(rp.ID, 0); err != nil {
				t.Fatalf("load %d: parallel choose failed: %v", i, err)
			}
		}
	}
	for probe := 0; probe < 60; probe++ {
		s := roadnet.VertexID(rng.Intn(n))
		d := roadnet.VertexID(rng.Intn(n))
		if s == d {
			continue
		}
		for _, algo := range []core.Algorithm{core.AlgoNaive, core.AlgoSingleSide, core.AlgoDualSide} {
			os, _, errS := es.MatchOnce(algo, s, d, 1)
			op, _, errP := ep.MatchOnce(algo, s, d, 1)
			if (errS == nil) != (errP == nil) {
				t.Fatalf("probe %d %v: %v vs %v", probe, algo, errS, errP)
			}
			sameOptions(t, probe, os, op)
		}
	}
}
