package core_test

import (
	"math/rand"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
)

// goldenPair builds two engines over the same network, seed and
// configuration, differing only in MatchWorkers: serial (1) vs
// parallel (4).
func goldenPair(t *testing.T, algo core.Algorithm) (serial, parallel *core.Engine) {
	t.Helper()
	mk := func(workers int) *core.Engine {
		g := testnet.Lattice(rand.New(rand.NewSource(77)), 12, 12, 100)
		e, err := core.NewEngine(g, core.Config{
			GridCols: 6, GridRows: 6,
			Capacity: 4, Sigma: 0.4, MaxWaitSeconds: 300,
			Algorithm:    algo,
			Seed:         77,
			MatchWorkers: workers,
		})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		e.AddVehiclesUniform(30)
		return e
	}
	return mk(1), mk(4)
}

func sameOptions(t *testing.T, step int, a, b []core.Option) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("step %d: serial %d options, parallel %d", step, len(a), len(b))
	}
	for i := range a {
		if a[i].Vehicle != b[i].Vehicle {
			t.Fatalf("step %d option %d: vehicle %d vs %d", step, i, a[i].Vehicle, b[i].Vehicle)
		}
		if a[i].PickupDist != b[i].PickupDist || a[i].Price != b[i].Price {
			t.Fatalf("step %d option %d: (%v, %v) vs (%v, %v)",
				step, i, a[i].PickupDist, a[i].Price, b[i].PickupDist, b[i].Price)
		}
		if len(a[i].Candidate.Seq) != len(b[i].Candidate.Seq) {
			t.Fatalf("step %d option %d: schedule lengths %d vs %d",
				step, i, len(a[i].Candidate.Seq), len(b[i].Candidate.Seq))
		}
		for j := range a[i].Candidate.Seq {
			if a[i].Candidate.Seq[j] != b[i].Candidate.Seq[j] {
				t.Fatalf("step %d option %d stop %d: %+v vs %+v",
					step, i, j, a[i].Candidate.Seq[j], b[i].Candidate.Seq[j])
			}
		}
	}
}

// TestGoldenSerialVsParallel pins the refactor's no-behavioural-drift
// guarantee: for a fixed seed and workload, the skyline option sets of
// the serial matcher (MatchWorkers=1, the reference algorithm) and the
// parallel matcher (MatchWorkers=4, batched probes folded in discovery
// order) are identical at every step — same vehicles, bit-identical
// pick-up distances and prices, same planned schedules. Both engines
// evolve through identical choices and ticks, so any divergence
// compounds and is caught.
func TestGoldenSerialVsParallel(t *testing.T) {
	for _, algo := range []core.Algorithm{core.AlgoNaive, core.AlgoSingleSide, core.AlgoDualSide} {
		t.Run(algo.String(), func(t *testing.T) {
			es, ep := goldenPair(t, algo)
			n := es.Graph().NumVertices()
			rng := rand.New(rand.NewSource(99))
			for step := 0; step < 120; step++ {
				s := roadnet.VertexID(rng.Intn(n))
				d := roadnet.VertexID(rng.Intn(n))
				riders := 1 + rng.Intn(3)
				if s == d {
					continue
				}
				rs, errS := es.Submit(s, d, riders)
				rp, errP := ep.Submit(s, d, riders)
				if (errS == nil) != (errP == nil) {
					t.Fatalf("step %d: serial err %v, parallel err %v", step, errS, errP)
				}
				if errS != nil {
					continue
				}
				sameOptions(t, step, rs.Options, rp.Options)

				// Evolve both fleets identically.
				if len(rs.Options) > 0 && rng.Intn(2) == 0 {
					pick := rng.Intn(len(rs.Options))
					cs := es.Choose(rs.ID, pick)
					cp := ep.Choose(rp.ID, pick)
					if (cs == nil) != (cp == nil) {
						t.Fatalf("step %d: serial choose %v, parallel choose %v", step, cs, cp)
					}
				} else {
					_ = es.Decline(rs.ID)
					_ = ep.Decline(rp.ID)
				}
				if rng.Intn(4) == 0 {
					if _, err := es.Tick(5); err != nil {
						t.Fatalf("serial tick: %v", err)
					}
					if _, err := ep.Tick(5); err != nil {
						t.Fatalf("parallel tick: %v", err)
					}
				}
			}
			ss, sp := es.Stats(), ep.Stats()
			if ss.Requests != sp.Requests || ss.Assigned != sp.Assigned || ss.Completed != sp.Completed {
				t.Fatalf("lifecycles diverged: serial %+v parallel %+v", ss, sp)
			}
		})
	}
}

// TestGoldenMatchOnceAcrossWorkers cross-checks MatchOnce (the
// benchmark entry point) between worker counts on a loaded fleet.
func TestGoldenMatchOnceAcrossWorkers(t *testing.T) {
	es, ep := goldenPair(t, core.AlgoDualSide)
	n := es.Graph().NumVertices()
	// Load both fleets identically.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		s := roadnet.VertexID(rng.Intn(n))
		d := roadnet.VertexID(rng.Intn(n))
		if s == d {
			continue
		}
		rs, errS := es.Submit(s, d, 1)
		rp, errP := ep.Submit(s, d, 1)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("load %d: %v vs %v", i, errS, errP)
		}
		if errS != nil || len(rs.Options) == 0 {
			continue
		}
		if es.Choose(rs.ID, 0) == nil {
			if err := ep.Choose(rp.ID, 0); err != nil {
				t.Fatalf("load %d: parallel choose failed: %v", i, err)
			}
		}
	}
	for probe := 0; probe < 60; probe++ {
		s := roadnet.VertexID(rng.Intn(n))
		d := roadnet.VertexID(rng.Intn(n))
		if s == d {
			continue
		}
		for _, algo := range []core.Algorithm{core.AlgoNaive, core.AlgoSingleSide, core.AlgoDualSide} {
			os, _, errS := es.MatchOnce(algo, s, d, 1)
			op, _, errP := ep.MatchOnce(algo, s, d, 1)
			if (errS == nil) != (errP == nil) {
				t.Fatalf("probe %d %v: %v vs %v", probe, algo, errS, errP)
			}
			sameOptions(t, probe, os, op)
		}
	}
}
