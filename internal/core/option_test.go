package core_test

import (
	"testing"

	"ptrider/internal/core"
)

func TestMatchOnceValidation(t *testing.T) {
	e := latticeEngine(t, 50, 5, 5, core.Config{Capacity: 2})
	e.AddVehiclesUniform(3)
	if _, _, err := e.MatchOnce(core.AlgoNaive, 3, 3, 1); err == nil {
		t.Error("s == d accepted")
	}
	opts, ms, err := e.MatchOnce(core.AlgoDualSide, 0, 7, 1)
	if err != nil {
		t.Fatalf("MatchOnce: %v", err)
	}
	if ms.Options != len(opts) {
		t.Errorf("stats.Options = %d, len = %d", ms.Options, len(opts))
	}
	// MatchOnce must not register a request.
	if got := e.Stats().Requests; got != 0 {
		t.Errorf("MatchOnce registered %d requests", got)
	}
}

func TestSortOptionsByPrice(t *testing.T) {
	opts := []core.Option{
		{PickupDist: 1, Price: 30},
		{PickupDist: 2, Price: 10},
		{PickupDist: 3, Price: 20},
	}
	byPrice := core.SortOptionsByPrice(opts)
	if byPrice[0].Price != 10 || byPrice[1].Price != 20 || byPrice[2].Price != 30 {
		t.Fatalf("sorted = %+v", byPrice)
	}
	// The input is untouched.
	if opts[0].Price != 30 {
		t.Fatal("SortOptionsByPrice mutated its input")
	}
}

func TestRequestStatusStrings(t *testing.T) {
	cases := map[core.RequestStatus]string{
		core.StatusQuoted:    "quoted",
		core.StatusAssigned:  "assigned",
		core.StatusOnboard:   "onboard",
		core.StatusCompleted: "completed",
		core.StatusDeclined:  "declined",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if core.AlgoNaive.String() != "naive" || core.AlgoDualSide.String() != "dual-side" {
		t.Error("algorithm names changed")
	}
}

func TestTickValidation(t *testing.T) {
	e := latticeEngine(t, 51, 5, 5, core.Config{Capacity: 2})
	if _, err := e.Tick(-1); err == nil {
		t.Error("negative tick accepted")
	}
	if _, err := e.Tick(0); err != nil {
		t.Errorf("zero tick rejected: %v", err)
	}
}

func TestDeclinedRequestCannotBeChosen(t *testing.T) {
	e := latticeEngine(t, 52, 6, 6, core.Config{Capacity: 2})
	e.AddVehiclesUniform(2)
	rec, err := e.Submit(0, 20, 1)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := e.Decline(rec.ID); err != nil {
		t.Fatalf("decline: %v", err)
	}
	if err := e.Choose(rec.ID, 0); err == nil {
		t.Error("choose after decline accepted")
	}
	if err := e.Decline(rec.ID); err == nil {
		t.Error("double decline accepted")
	}
}
