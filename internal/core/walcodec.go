package core

// Binary codec of the journal records. The journal sits on the Submit
// hot path — every registered quote is encoded under ledgerMu before
// the group-commit append — so records use a hand-rolled little-endian
// layout written into a reusable scratch buffer instead of reflective
// JSON: no allocation, no field-name bytes, ~10× faster to encode.
// Snapshots stay JSON (cold path, and the extra self-description is
// useful when inspecting a WAL directory by hand).
//
// Layout: one tag byte, then the op's fields in declaration order.
// Integers are fixed-width little-endian, floats are IEEE-754 bits,
// strings and slices carry a u32 length prefix. The wal layer already
// frames and checksums each record, so the codec needs no trailer; the
// decoder still bounds-checks every read because a record that passed
// its CRC can be version-skewed, not just corrupt.

import (
	"encoding/binary"
	"fmt"
	"math"

	"ptrider/internal/fleet"
	"ptrider/internal/kinetic"
	"ptrider/internal/roadnet"
)

// Record tag bytes. Append-only: renumbering breaks journal replay.
const (
	tagSubmit byte = iota + 1
	tagChoose
	tagDecline
	tagCancel
	tagTick
	tagAddV
	tagRemV
	tagSurge
)

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// encodeWALRecord appends rec's encoding to buf and returns the
// extended slice (pass buf[:0] to reuse its capacity).
func encodeWALRecord(buf []byte, rec *walRecord) ([]byte, error) {
	switch rec.Op {
	case opSubmit:
		s := rec.Submit
		buf = append(buf, tagSubmit)
		buf = appendU64(buf, uint64(s.ID))
		buf = appendU32(buf, uint32(s.S))
		buf = appendU32(buf, uint32(s.D))
		buf = appendU32(buf, uint32(s.Riders))
		buf = appendF64(buf, s.Wait)
		buf = appendF64(buf, s.Sigma)
		buf = appendF64(buf, s.SD)
		buf = appendF64(buf, s.Clock)
		buf = appendF64(buf, s.FareRatio)
		buf = appendF64(buf, s.SurgeMult)
		buf = appendU32(buf, uint32(s.SurgeCell))
		buf = appendU64(buf, s.SurgeEpoch)
		buf = appendStr(buf, s.IdemKey)
		buf = appendU32(buf, uint32(len(s.Options)))
		for i := range s.Options {
			o := &s.Options[i]
			buf = appendU32(buf, uint32(o.Vehicle))
			buf = appendF64(buf, o.PickupDist)
			buf = appendF64(buf, o.Price)
			buf = appendF64(buf, o.Candidate.PickupDist)
			buf = appendF64(buf, o.Candidate.TotalDist)
			buf = appendF64(buf, o.Candidate.Delta)
			buf = appendU32(buf, uint32(len(o.Candidate.Seq)))
			for _, p := range o.Candidate.Seq {
				buf = appendU32(buf, uint32(p.Loc))
				buf = append(buf, byte(p.Kind))
				buf = appendU64(buf, uint64(p.Req))
			}
		}
		return buf, nil

	case opChoose:
		c := rec.Choose
		buf = append(buf, tagChoose)
		buf = appendU64(buf, uint64(c.ID))
		buf = appendU32(buf, uint32(c.OptionIndex))
		buf = appendU32(buf, uint32(c.Vehicle))
		buf = appendF64(buf, c.Price)
		buf = appendF64(buf, c.PlannedPickupOdo)
		if c.Reprobed {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		return buf, nil

	case opDecline:
		buf = append(buf, tagDecline)
		return appendU64(buf, uint64(rec.ReqID)), nil

	case opCancel:
		buf = append(buf, tagCancel)
		return appendU64(buf, uint64(rec.ReqID)), nil

	case opTick:
		t := rec.Tick
		buf = append(buf, tagTick)
		buf = appendF64(buf, t.Dt)
		buf = appendU32(buf, uint32(t.N))
		return appendU64(buf, t.Digest), nil

	case opAddV:
		a := rec.AddV
		buf = append(buf, tagAddV)
		buf = appendU64(buf, a.Draws)
		buf = appendU32(buf, uint32(len(a.Locs)))
		for _, l := range a.Locs {
			buf = appendU32(buf, uint32(l))
		}
		return buf, nil

	case opRemV:
		buf = append(buf, tagRemV)
		return appendU32(buf, uint32(rec.Vehicle)), nil

	case opSurge:
		g := rec.Surge
		buf = append(buf, tagSurge)
		buf = appendU64(buf, g.Epoch)
		buf = appendF64(buf, g.Next)
		buf = appendU32(buf, uint32(len(g.EMA)))
		for _, v := range g.EMA {
			buf = appendF64(buf, v)
		}
		return buf, nil
	}
	return nil, fmt.Errorf("core: encode of unknown op %q", rec.Op)
}

// walReader is a bounds-checked cursor over a record payload. Reads
// past the end return zero values and latch err; the caller checks
// once at the end.
type walReader struct {
	b   []byte
	off int
	bad bool
}

func (r *walReader) u8() byte {
	if r.off+1 > len(r.b) {
		r.bad = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *walReader) u32() uint32 {
	if r.off+4 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *walReader) u64() uint64 {
	if r.off+8 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *walReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *walReader) str() string {
	n := int(r.u32())
	if r.bad || n < 0 || r.off+n > len(r.b) {
		r.bad = true
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

// count reads a u32 length prefix and sanity-checks it against the
// bytes remaining (each element needs at least elemSize bytes), so a
// skewed record cannot provoke a huge allocation.
func (r *walReader) count(elemSize int) int {
	n := int(r.u32())
	if r.bad || n < 0 || n*elemSize > len(r.b)-r.off {
		r.bad = true
		return 0
	}
	return n
}

// decodeWALRecord parses one journal record payload.
func decodeWALRecord(payload []byte) (walRecord, error) {
	r := walReader{b: payload}
	var rec walRecord
	switch tag := r.u8(); tag {
	case tagSubmit:
		s := &submitRec{}
		rec.Op, rec.Submit = opSubmit, s
		s.ID = RequestID(r.u64())
		s.S = roadnet.VertexID(r.u32())
		s.D = roadnet.VertexID(r.u32())
		s.Riders = int(r.u32())
		s.Wait = r.f64()
		s.Sigma = r.f64()
		s.SD = r.f64()
		s.Clock = r.f64()
		s.FareRatio = r.f64()
		s.SurgeMult = r.f64()
		s.SurgeCell = int32(r.u32())
		s.SurgeEpoch = r.u64()
		s.IdemKey = r.str()
		if n := r.count(4 + 6*8 + 4); n > 0 {
			s.Options = make([]Option, n)
			for i := range s.Options {
				o := &s.Options[i]
				o.Vehicle = fleet.VehicleID(r.u32())
				o.PickupDist = r.f64()
				o.Price = r.f64()
				o.Candidate.PickupDist = r.f64()
				o.Candidate.TotalDist = r.f64()
				o.Candidate.Delta = r.f64()
				if m := r.count(4 + 1 + 8); m > 0 {
					o.Candidate.Seq = make([]kinetic.Point, m)
					for j := range o.Candidate.Seq {
						p := &o.Candidate.Seq[j]
						p.Loc = roadnet.VertexID(r.u32())
						p.Kind = kinetic.PointKind(r.u8())
						p.Req = kinetic.RequestID(r.u64())
					}
				}
			}
		}

	case tagChoose:
		c := &chooseRec{}
		rec.Op, rec.Choose = opChoose, c
		c.ID = RequestID(r.u64())
		c.OptionIndex = int(int32(r.u32()))
		c.Vehicle = fleet.VehicleID(r.u32())
		c.Price = r.f64()
		c.PlannedPickupOdo = r.f64()
		c.Reprobed = r.u8() != 0

	case tagDecline:
		rec.Op, rec.ReqID = opDecline, RequestID(r.u64())

	case tagCancel:
		rec.Op, rec.ReqID = opCancel, RequestID(r.u64())

	case tagTick:
		t := &tickRec{}
		rec.Op, rec.Tick = opTick, t
		t.Dt = r.f64()
		t.N = int(r.u32())
		t.Digest = r.u64()

	case tagAddV:
		a := &addvRec{}
		rec.Op, rec.AddV = opAddV, a
		a.Draws = r.u64()
		if n := r.count(4); n > 0 {
			a.Locs = make([]roadnet.VertexID, n)
			for i := range a.Locs {
				a.Locs[i] = roadnet.VertexID(r.u32())
			}
		}

	case tagRemV:
		rec.Op, rec.Vehicle = opRemV, fleet.VehicleID(r.u32())

	case tagSurge:
		g := &surgeRec{}
		rec.Op, rec.Surge = opSurge, g
		g.Epoch = r.u64()
		g.Next = r.f64()
		if n := r.count(8); n > 0 {
			g.EMA = make([]float64, n)
			for i := range g.EMA {
				g.EMA[i] = r.f64()
			}
		}

	default:
		return walRecord{}, fmt.Errorf("core: journal record with unknown tag %d", tag)
	}
	if r.bad || r.off != len(payload) {
		return walRecord{}, fmt.Errorf("core: malformed %q journal record (%d bytes)", rec.Op, len(payload))
	}
	return rec, nil
}
