package core_test

import (
	"errors"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/fleet"
)

// TestTickClockUnchangedOnStepFailure is the regression test for the
// clock/odometry desync: Tick used to advance the simulated clock
// before fleet.Step ran and left it advanced even when the step failed,
// permanently desynchronising the engine clock from fleet odometry. A
// failing step must leave Clock() exactly where it was.
func TestTickClockUnchangedOnStepFailure(t *testing.T) {
	e := latticeEngine(t, 40, 6, 6, core.Config{Capacity: 2})
	e.AddVehiclesUniform(3)

	if _, err := e.Tick(5); err != nil {
		t.Fatalf("warmup tick: %v", err)
	}
	before := e.Clock()
	if before != 5 {
		t.Fatalf("clock after warmup = %v, want 5", before)
	}

	boom := errors.New("injected fleet failure")
	e.SetStepOverride(func(float64) ([]fleet.Event, error) { return nil, boom })
	if _, err := e.Tick(3); !errors.Is(err, boom) {
		t.Fatalf("Tick error = %v, want injected failure", err)
	}
	if got := e.Clock(); got != before {
		t.Fatalf("clock advanced across failed step: %v -> %v", before, got)
	}

	// Partial progress still surfaces its events, but the clock holds.
	e.SetStepOverride(func(float64) ([]fleet.Event, error) {
		return []fleet.Event{}, boom
	})
	if _, err := e.Tick(2); !errors.Is(err, boom) {
		t.Fatalf("Tick error = %v, want injected failure", err)
	}
	if got := e.Clock(); got != before {
		t.Fatalf("clock advanced across failed step with events: %v -> %v", before, got)
	}

	// Recovery: with the real step restored the clock resumes from
	// where the last successful step left it.
	e.SetStepOverride(nil)
	if _, err := e.Tick(3); err != nil {
		t.Fatalf("recovery tick: %v", err)
	}
	if got := e.Clock(); got != before+3 {
		t.Fatalf("clock after recovery = %v, want %v", got, before+3)
	}
}

// TestNegativeTickIsInvalidArgument pins the error classification the
// HTTP layer relies on: a negative tick is a caller error
// (ErrInvalidArgument), and it leaves the clock untouched.
func TestNegativeTickIsInvalidArgument(t *testing.T) {
	e := latticeEngine(t, 41, 5, 5, core.Config{Capacity: 2})
	before := e.Clock()
	_, err := e.Tick(-1)
	if err == nil {
		t.Fatal("negative tick accepted")
	}
	if !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("negative tick error %v does not wrap ErrInvalidArgument", err)
	}
	if e.Clock() != before {
		t.Fatalf("negative tick moved the clock: %v -> %v", before, e.Clock())
	}
}
