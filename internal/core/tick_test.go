package core_test

import (
	"errors"
	"strings"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/fleet"
)

// TestTickClockUnchangedOnStepFailure is the regression test for the
// clock/odometry desync: Tick used to advance the simulated clock
// before fleet.Step ran and left it advanced even when the step failed,
// permanently desynchronising the engine clock from fleet odometry. A
// failing step must leave Clock() exactly where it was.
func TestTickClockUnchangedOnStepFailure(t *testing.T) {
	e := latticeEngine(t, 40, 6, 6, core.Config{Capacity: 2})
	e.AddVehiclesUniform(3)

	if _, err := e.Tick(5); err != nil {
		t.Fatalf("warmup tick: %v", err)
	}
	before := e.Clock()
	if before != 5 {
		t.Fatalf("clock after warmup = %v, want 5", before)
	}

	boom := errors.New("injected fleet failure")
	e.SetStepOverride(func(float64) ([]fleet.Event, error) { return nil, boom })
	if _, err := e.Tick(3); !errors.Is(err, boom) {
		t.Fatalf("Tick error = %v, want injected failure", err)
	}
	if got := e.Clock(); got != before {
		t.Fatalf("clock advanced across failed step: %v -> %v", before, got)
	}

	// Partial progress still surfaces its events, but the clock holds.
	e.SetStepOverride(func(float64) ([]fleet.Event, error) {
		return []fleet.Event{}, boom
	})
	if _, err := e.Tick(2); !errors.Is(err, boom) {
		t.Fatalf("Tick error = %v, want injected failure", err)
	}
	if got := e.Clock(); got != before {
		t.Fatalf("clock advanced across failed step with events: %v -> %v", before, got)
	}

	// Recovery: with the real step restored the clock resumes from
	// where the last successful step left it.
	e.SetStepOverride(nil)
	if _, err := e.Tick(3); err != nil {
		t.Fatalf("recovery tick: %v", err)
	}
	if got := e.Clock(); got != before+3 {
		t.Fatalf("clock after recovery = %v, want %v", got, before+3)
	}
}

// TestNegativeTickIsInvalidArgument pins the error classification the
// HTTP layer relies on: a negative tick is a caller error
// (ErrInvalidArgument), and it leaves the clock untouched.
func TestNegativeTickIsInvalidArgument(t *testing.T) {
	e := latticeEngine(t, 41, 5, 5, core.Config{Capacity: 2})
	before := e.Clock()
	_, err := e.Tick(-1)
	if err == nil {
		t.Fatal("negative tick accepted")
	}
	if !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("negative tick error %v does not wrap ErrInvalidArgument", err)
	}
	if e.Clock() != before {
		t.Fatalf("negative tick moved the clock: %v -> %v", before, e.Clock())
	}
}

// TestTickSurvivesPartialVehicleFailures is the regression test for the
// partial-step abort bug: Fleet.Step used to return on the first
// per-vehicle error, silently freezing every later vehicle for that
// tick while the clock semantics pretended the whole fleet moved or
// none did. With two bad vehicles the tick must now (a) report BOTH
// failures through errors.Join, (b) keep moving every healthy vehicle,
// and (c) hold the clock (a failed step is still a failed step).
func TestTickSurvivesPartialVehicleFailures(t *testing.T) {
	e := latticeEngine(t, 42, 6, 6, core.Config{Capacity: 2})
	e.AddVehiclesUniform(6)

	boom0 := errors.New("vehicle 0 engine fire")
	boom3 := errors.New("vehicle 3 flat tire")
	e.SetVehicleStepFault(func(id fleet.VehicleID) error {
		switch id {
		case 0:
			return boom0
		case 3:
			return boom3
		}
		return nil
	})

	before := e.VehicleViews(0)
	clock0 := e.Clock()
	_, err := e.Tick(30)
	if err == nil {
		t.Fatal("Tick with two faulted vehicles returned nil error")
	}
	// Both causes must be reachable — the first failure no longer
	// shadows the second.
	if !errors.Is(err, boom0) || !errors.Is(err, boom3) {
		t.Fatalf("joined error %v does not contain both vehicle failures", err)
	}
	for _, want := range []string{"vehicle 0", "vehicle 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %q", err, want)
		}
	}
	if got := e.Clock(); got != clock0 {
		t.Fatalf("clock advanced across failed step: %v -> %v", clock0, got)
	}

	after := e.VehicleViews(0)
	if len(after) != len(before) {
		t.Fatalf("vehicle count changed: %d -> %d", len(before), len(after))
	}
	for i := range after {
		moved := after[i].X != before[i].X || after[i].Y != before[i].Y
		faulted := after[i].ID == 0 || after[i].ID == 3
		if faulted && moved {
			t.Fatalf("faulted vehicle %d moved: (%v,%v) -> (%v,%v)",
				after[i].ID, before[i].X, before[i].Y, after[i].X, after[i].Y)
		}
		if !faulted && !moved {
			t.Fatalf("healthy vehicle %d frozen by other vehicles' failures", after[i].ID)
		}
	}

	// Clearing the fault restores normal ticking.
	e.SetVehicleStepFault(nil)
	if _, err := e.Tick(30); err != nil {
		t.Fatalf("tick after clearing fault: %v", err)
	}
	if got := e.Clock(); got != clock0+30 {
		t.Fatalf("clock after recovery = %v, want %v", got, clock0+30)
	}
}
