package core

import (
	"sync"

	"ptrider/internal/fleet"
	"ptrider/internal/gridindex"
	"ptrider/internal/kinetic"
	"ptrider/internal/pricing"
	"ptrider/internal/skyline"
)

// Option is one qualified result ⟨c, time, price⟩ of Definition 4. Time
// is carried as a pick-up distance in metres (the paper's dist_pt); the
// engine converts to seconds with the system speed at the API surface.
type Option struct {
	Vehicle fleet.VehicleID
	// PickupDist is the planned pick-up distance from the vehicle's
	// current location along the planned schedule.
	PickupDist float64
	// Price is the fare under the engine's price model.
	Price float64
	// Candidate is the planned schedule realising this option; Choose
	// commits it.
	Candidate kinetic.Candidate
}

// ReqSpec is the matcher-level view of a request, with all derived
// quantities precomputed.
type ReqSpec struct {
	Kin kinetic.Request
	// Fare is the quote-time pricing context the request was resolved
	// under (see pricing.Pipeline.Resolve). Ratio and MinPrice below
	// are its scalars, denormalised so the matcher hot paths read plain
	// fields; registerRecord snapshots the full context into the
	// ledger record.
	Fare pricing.FareContext
	// Ratio is the effective price ratio (f_n × surge multiplier; just
	// f_n when surge is off or the cell is unsurged).
	Ratio float64
	// MinPrice is the zero-detour price floor Ratio·dist(s,d).
	MinPrice float64
	// MaxPickupDist caps the planned pick-up distance of returned
	// options (the engine's search cutoff).
	MaxPickupDist float64
}

// MatchStats instruments one matching run (paper §3.3's efficiency
// discussion: vehicles verified vs pruned, exact distance computations,
// grid cells scanned). With parallel candidate evaluation the pruning
// counters can differ from a serial run of the same match — batched
// vehicles skip the intra-cell skyline pruning — while the returned
// option set stays identical. DistCalls deltas are attributed from a
// shared counter, so concurrent matches bleed into each other's counts;
// treat them as aggregate instrumentation, not per-request truth.
type MatchStats struct {
	// Verified counts vehicles whose kinetic tree was consulted.
	Verified int
	// PrunedVehicles counts vehicles skipped by bound-based pruning.
	PrunedVehicles int
	// CellsScanned counts ring cells visited across both sides.
	CellsScanned int
	// DistCalls counts exact shortest-path computations attributable to
	// this match. A multi-target batch pass counts once: it is one
	// search, however many targets it settles.
	DistCalls int64
	// Options is the size of the returned skyline.
	Options int
	// ParallelWidth is the widest candidate-evaluation fan-out the
	// match used (see Config.MatchWorkers); 1 means every probe ran
	// serially. Zero when no probe batch was flushed at all.
	ParallelWidth int
}

// Matcher answers a request with the global non-dominated option set.
// Implementations are stateless and safe for concurrent Match calls.
type Matcher interface {
	// Name identifies the algorithm ("naive", "single-side",
	// "dual-side") as selectable in the demo's website interface.
	Name() string
	// Match returns the skyline options for spec, sorted by pick-up
	// distance ascending.
	Match(spec *ReqSpec, stats *MatchStats) []Option
}

// matchContext bundles the shared state every matcher operates on: the
// immutable substrate, the concurrent metric, the fleet and its grid
// lists, and the per-match scratch pool.
type matchContext struct {
	sub    *Substrate
	fleet  *fleet.Fleet
	lists  *gridindex.VehicleLists
	metric *memoMetric
	// workers bounds the candidate-evaluation fan-out of one match;
	// 1 means fully serial evaluation (the seed algorithm, bit for bit).
	workers int
	// disableEmptyLemma turns off the nearest-empty-vehicle
	// optimisation (ablation E8): empty vehicles are then verified like
	// non-empty ones.
	disableEmptyLemma bool

	scratch sync.Pool // *matchScratch
	groups  sync.Pool // *groupScratch
}

func newMatchContext(sub *Substrate, fl *fleet.Fleet, lists *gridindex.VehicleLists, metric *memoMetric, workers int, disableEmptyLemma bool) *matchContext {
	ctx := &matchContext{
		sub:               sub,
		fleet:             fl,
		lists:             lists,
		metric:            metric,
		workers:           workers,
		disableEmptyLemma: disableEmptyLemma,
	}
	ctx.scratch.New = func() any { return &matchScratch{} }
	ctx.groups.New = func() any { return &groupScratch{} }
	return ctx
}

func (ctx *matchContext) grid() *gridindex.Grid { return ctx.sub.grid }

// foldPacked merges one vehicle's packed probe results into the global
// skyline, applying the pick-up cutoff. The stop sequence is
// materialised only for entries the skyline accepts — rejected
// candidates (the vast majority on a loaded fleet) cost no allocation.
// Coordinates already present are skipped so ties do not multiply
// across vehicles; fold order therefore decides tie winners, which is
// why parallel evaluation folds in discovery order.
func foldPacked(v *fleet.Vehicle, cands []kinetic.PackedCandidate, pts []kinetic.Point, spec *ReqSpec, sky *skyline.Skyline[Option], stats *MatchStats) {
	for _, cand := range cands {
		if cand.PickupDist > spec.MaxPickupDist {
			continue
		}
		price := spec.Ratio * (cand.Delta + spec.Kin.SD)
		if sky.IsDominated(cand.PickupDist, price) || sky.ContainsPoint(cand.PickupDist, price) {
			continue
		}
		sky.Add(cand.PickupDist, price, Option{
			Vehicle:    v.ID,
			PickupDist: cand.PickupDist,
			Price:      price,
			Candidate: kinetic.Candidate{
				Seq:        kinetic.UnpackSeq(cand.Perm, pts),
				PickupDist: cand.PickupDist,
				TotalDist:  cand.TotalDist,
				Delta:      cand.Delta,
			},
		})
	}
}

// skylineOptions extracts the final option list, sorted by pick-up
// distance. Only the returned slice is allocated; the skyline sorts in
// place (it is pooled scratch, reset by the next match).
func skylineOptions(sky *skyline.Skyline[Option], stats *MatchStats) []Option {
	entries := sky.Sorted()
	out := make([]Option, len(entries))
	for i, e := range entries {
		out[i] = e.Payload
	}
	stats.Options = len(out)
	return out
}

// emptyVehicleOption computes the option an empty vehicle at pickup
// distance d offers: the whole new schedule is ⟨l, s, d⟩, so the detour
// delta is d + dist(s,d) and the price f_n·(delta + dist(s,d)) — both
// strictly increasing in d, which is the nearest-empty-vehicle lemma.
// The arithmetic deliberately mirrors the kinetic quote path
// (delta first, then the price) so the floats are bit-identical to what
// NaiveMatcher computes by tree insertion; any drift would perturb
// dominance at exact ties and break matcher equivalence.
func emptyVehicleOption(v *fleet.Vehicle, d float64, spec *ReqSpec) Option {
	delta := d + spec.Kin.SD
	price := spec.Ratio * (delta + spec.Kin.SD)
	return Option{
		Vehicle:    v.ID,
		PickupDist: d,
		Price:      price,
		Candidate: kinetic.Candidate{
			Seq: []kinetic.Point{
				{Loc: spec.Kin.S, Kind: kinetic.Pickup, Req: spec.Kin.ID},
				{Loc: spec.Kin.D, Kind: kinetic.Dropoff, Req: spec.Kin.ID},
			},
			PickupDist: d,
			TotalDist:  delta,
			Delta:      delta,
		},
	}
}
