package core_test

import (
	"testing"

	"ptrider/internal/core"
)

// TestPerRequestConstraints verifies the extension the demo paper notes
// but simplifies away (§4.2): riders supplying their own waiting time
// and service constraint.
func TestPerRequestConstraints(t *testing.T) {
	e := latticeEngine(t, 20, 8, 8, core.Config{Capacity: 4, Sigma: 0.4, MaxWaitSeconds: 300})
	e.AddVehicleAt(0)

	// A strict rider: zero detour allowed.
	strict, err := e.SubmitWithConstraints(9, 54, 1, core.Constraints{Sigma: 0})
	if err != nil {
		t.Fatalf("submit strict: %v", err)
	}
	if strict.Sigma != 0 {
		t.Fatalf("strict sigma recorded as %v", strict.Sigma)
	}
	if len(strict.Options) == 0 {
		t.Fatal("an empty vehicle can always serve with zero detour")
	}
	if err := e.Choose(strict.ID, 0); err != nil {
		t.Fatalf("choose strict: %v", err)
	}

	// A second rider along the way: under the strict first rider no
	// shared schedule may detour them, so options can only be
	// sequential (after the first dropoff) or absent; any returned
	// schedule must keep the first rider's in-vehicle distance direct.
	second, err := e.SubmitWithConstraints(18, 63, 1, core.Constraints{Sigma: core.DefaultSigma})
	if err != nil {
		t.Fatalf("submit second: %v", err)
	}
	if second.Sigma != 0.4 {
		t.Fatalf("second sigma = %v, want global 0.4", second.Sigma)
	}

	// Drive the strict rider to completion and assert zero detour.
	var rec *core.RequestRecord
	for i := 0; i < 3000; i++ {
		if _, err := e.Tick(1); err != nil {
			t.Fatalf("tick: %v", err)
		}
		rec, _ = e.Request(strict.ID)
		if rec.Status == core.StatusCompleted {
			break
		}
	}
	if rec == nil || rec.Status != core.StatusCompleted {
		t.Fatal("strict rider never completed")
	}
	if got := rec.DropoffOdo - rec.PickupOdo; got > rec.SD+1e-6 {
		t.Fatalf("strict rider detoured: in-vehicle %v > direct %v", got, rec.SD)
	}
}

// TestPerRequestWaitOverride: a rider with a tiny waiting budget pins
// the vehicle to the quoted pickup; subsequent insertions must not
// delay it beyond that budget.
func TestPerRequestWaitOverride(t *testing.T) {
	e := latticeEngine(t, 21, 8, 8, core.Config{Capacity: 4, Sigma: 0.8, MaxWaitSeconds: 600})
	e.AddVehicleAt(0)
	first, err := e.SubmitWithConstraints(9, 54, 1, core.Constraints{WaitSeconds: 1})
	if err != nil || len(first.Options) == 0 {
		t.Fatalf("submit: %v (%d options)", err, len(first.Options))
	}
	if first.WaitSeconds != 1 {
		t.Fatalf("recorded wait %v", first.WaitSeconds)
	}
	if err := e.Choose(first.ID, 0); err != nil {
		t.Fatalf("choose: %v", err)
	}
	planned := first.Options[0].PickupDist

	// Complete the trip; actual pickup must be within 1 s of plan.
	var rec *core.RequestRecord
	for i := 0; i < 3000; i++ {
		if _, err := e.Tick(1); err != nil {
			t.Fatalf("tick: %v", err)
		}
		rec, _ = e.Request(first.ID)
		if rec.Status == core.StatusCompleted {
			break
		}
	}
	if rec.Status != core.StatusCompleted {
		t.Fatal("never completed")
	}
	v, _ := e.Request(first.ID)
	maxOdo := planned + 1*e.Speed() + 1e-6
	if v.PickupOdo > maxOdo {
		t.Fatalf("pickup odometer %v exceeds plan %v + 1s budget", v.PickupOdo, maxOdo)
	}
}

func TestSubmitBatchGreedy(t *testing.T) {
	e := latticeEngine(t, 22, 8, 8, core.Config{Capacity: 2, Sigma: 0.4, MaxWaitSeconds: 300})
	e.AddVehicleAt(0) // a single two-seat taxi

	takeFirst := func(opts []core.Option) int {
		if len(opts) == 0 {
			return -1
		}
		return 0
	}
	// Two simultaneous 2-rider groups: greedy gives the taxi to the
	// first; the second finds the only vehicle full.
	recs, err := e.SubmitBatch([]core.BatchItem{
		{S: 9, D: 54, Riders: 2, Constraints: core.DefaultConstraints(), Choose: takeFirst},
		{S: 10, D: 55, Riders: 2, Constraints: core.DefaultConstraints(), Choose: takeFirst},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(recs) != 2 || recs[0] == nil || recs[1] == nil {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].Status != core.StatusAssigned {
		t.Fatalf("first item status = %v", recs[0].Status)
	}
	// The second group may still be quoted a *sequential* schedule
	// (after the first group's dropoff) — greedy means it sees the
	// post-commit fleet, not that it is starved.
	for _, o := range recs[1].Options {
		if o.PickupDist <= recs[0].Options[0].PickupDist {
			t.Fatalf("second batch item was quoted pre-commit state: %+v", o)
		}
	}
}

// TestAdaptiveMatchWidth checks the adaptive candidate-evaluation
// fan-out and its observability: a naive match over a fleet much larger
// than the worker budget must use the full budget and report it in
// MatchStats; a serial engine must report width 1; and the engine-level
// average must surface through Stats.
func TestAdaptiveMatchWidth(t *testing.T) {
	mk := func(workers int) *core.Engine {
		e := latticeEngine(t, 24, 8, 8, core.Config{Capacity: 4, MatchWorkers: workers})
		e.AddVehiclesUniform(24)
		return e
	}
	wide := mk(4)
	_, ms, err := wide.MatchOnce(core.AlgoNaive, 1, 40, 1)
	if err != nil {
		t.Fatalf("match: %v", err)
	}
	if ms.ParallelWidth != 4 {
		t.Fatalf("24-vehicle naive flush used width %d, want the full budget 4", ms.ParallelWidth)
	}
	serial := mk(1)
	_, ms, err = serial.MatchOnce(core.AlgoNaive, 1, 40, 1)
	if err != nil {
		t.Fatalf("match: %v", err)
	}
	if ms.ParallelWidth != 1 {
		t.Fatalf("serial engine reported width %d, want 1", ms.ParallelWidth)
	}
	if _, err := wide.Submit(1, 40, 1); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st := wide.Stats(); st.AvgMatchWidth <= 0 {
		t.Fatalf("AvgMatchWidth not surfaced: %+v", st)
	}
}

func TestSubmitBatchQuoteOnly(t *testing.T) {
	e := latticeEngine(t, 23, 6, 6, core.Config{Capacity: 4})
	e.AddVehiclesUniform(3)
	recs, err := e.SubmitBatch([]core.BatchItem{
		{S: 1, D: 20, Riders: 1, Constraints: core.DefaultConstraints()},
		{S: 2, D: 21, Riders: 1, Constraints: core.DefaultConstraints()},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i, r := range recs {
		if r.Status != core.StatusDeclined {
			t.Fatalf("item %d status = %v, want declined (nil chooser)", i, r.Status)
		}
	}
	// Errors are reported but do not abort the batch.
	recs, err = e.SubmitBatch([]core.BatchItem{
		{S: 1, D: 1, Riders: 1, Constraints: core.DefaultConstraints()}, // invalid
		{S: 2, D: 21, Riders: 1, Constraints: core.DefaultConstraints()},
	})
	if err == nil {
		t.Fatal("invalid item error swallowed")
	}
	if recs[0] != nil || recs[1] == nil {
		t.Fatalf("records = %+v", recs)
	}
}
