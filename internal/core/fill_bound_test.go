package core

// Internal regression tests for the radius-bounded batch fills: a
// bounded fill must answer within-bound targets exactly in one search,
// route the rare beyond-bound target through the per-pair fallback
// (counted in DistCalls like any other exact search), and never leak a
// truncation artefact as a fake disconnection. These pin the
// dist-calls accounting the coalescing efficiency test
// (TestBatchCoalescingDistCalls) measures end to end.

import (
	"math"
	"math/rand"
	"testing"

	"ptrider/internal/gridindex"
	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
)

func fillBoundMetric(t *testing.T) (*memoMetric, *roadnet.Graph) {
	t.Helper()
	g := testnet.Lattice(rand.New(rand.NewSource(7)), 12, 12, 250)
	grid, err := gridindex.Build(g, gridindex.Config{Cols: 6, Rows: 6})
	if err != nil {
		t.Fatal(err)
	}
	return newMemoMetric(grid, nil, false), g
}

// TestBoundedFillFallbackDistCalls pins the accounting: one bounded
// fill is one DistCall; a beyond-bound target resolved by fallback is
// one more; within-bound targets cost nothing extra and match the
// unbounded values exactly.
func TestBoundedFillFallbackDistCalls(t *testing.T) {
	m, g := fillBoundMetric(t)
	n := g.NumVertices()
	from := roadnet.VertexID(0)

	exact := make([]float64, n)
	m.FillDistsUncached(from, math.Inf(1), exact)
	if got := m.DistCalls(); got != 1 {
		t.Fatalf("unbounded fill cost %d dist calls, want 1", got)
	}

	// Bound the fill at half the farthest vertex: some targets settle,
	// the rest truncate to +Inf.
	far := 0.0
	for v := 0; v < n; v++ {
		if !math.IsInf(exact[v], 1) && exact[v] > far {
			far = exact[v]
		}
	}
	bound := far / 2
	fill := make([]float64, n)
	m.FillDistsUncached(from, bound, fill)
	var within, beyond []roadnet.VertexID
	for v := 0; v < n; v++ {
		if roadnet.VertexID(v) == from {
			continue
		}
		if math.IsInf(fill[v], 1) {
			beyond = append(beyond, roadnet.VertexID(v))
		} else {
			within = append(within, roadnet.VertexID(v))
			if fill[v] != exact[v] {
				t.Fatalf("bounded fill[%d] = %v, exact %v", v, fill[v], exact[v])
			}
		}
	}
	if len(beyond) == 0 {
		t.Fatal("bound truncated nothing; test graph too small")
	}

	// Prefilled batch over a mixed target set at maxDist = Inf: the
	// within-bound targets read from the fill, each beyond-bound target
	// falls back to one exact per-pair search.
	targets := append(append([]roadnet.VertexID(nil), within[:3]...), beyond[:2]...)
	out := make([]float64, len(targets))
	var sc memoBatchScratch
	callsBefore, fbBefore := m.DistCalls(), m.FillFallbacks()
	m.DistBatchPrefilled(from, targets, math.Inf(1), out, fill, bound, &sc)
	if got := m.FillFallbacks() - fbBefore; got != 2 {
		t.Fatalf("fallbacks = %d, want 2 (one per beyond-bound target)", got)
	}
	if got := m.DistCalls() - callsBefore; got != 2 {
		t.Fatalf("fallback dist calls = %d, want 2", got)
	}
	for i, target := range targets {
		if out[i] != exact[target] {
			t.Fatalf("prefilled dist to %d = %v, exact %v", target, out[i], exact[target])
		}
	}

	// A second pass over the same targets is fully memoised: the
	// fallback values were stored like any other batch result.
	callsBefore = m.DistCalls()
	m.DistBatchPrefilled(from, targets, math.Inf(1), out, fill, bound, &sc)
	if got := m.DistCalls() - callsBefore; got != 0 {
		t.Fatalf("memoised re-read cost %d dist calls, want 0", got)
	}
}

// TestBoundedFillNoFallbackWithinBound pins that a query whose own
// cutoff stays within the fill radius never pays a fallback: a +Inf
// fill entry then proves the target is beyond the cutoff, which is all
// the truncating query needs.
func TestBoundedFillNoFallbackWithinBound(t *testing.T) {
	m, g := fillBoundMetric(t)
	n := g.NumVertices()
	from := roadnet.VertexID(0)

	fill := make([]float64, n)
	bound := 800.0
	m.FillDistsUncached(from, bound, fill)
	var beyond roadnet.VertexID = -1
	for v := 0; v < n; v++ {
		if roadnet.VertexID(v) != from && math.IsInf(fill[v], 1) {
			beyond = roadnet.VertexID(v)
			break
		}
	}
	if beyond < 0 {
		t.Fatal("bound truncated nothing")
	}

	out := make([]float64, 1)
	var sc memoBatchScratch
	callsBefore, fbBefore := m.DistCalls(), m.FillFallbacks()
	m.DistBatchPrefilled(from, []roadnet.VertexID{beyond}, bound/2, out, fill, bound, &sc)
	if got := m.FillFallbacks() - fbBefore; got != 0 {
		t.Fatalf("within-cutoff query paid %d fallbacks, want 0", got)
	}
	if got := m.DistCalls() - callsBefore; got != 0 {
		t.Fatalf("within-cutoff query cost %d dist calls, want 0", got)
	}
	if !math.IsInf(out[0], 1) {
		t.Fatalf("beyond-cutoff target resolved to %v, want +Inf truncation", out[0])
	}
}
