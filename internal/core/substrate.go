package core

import (
	"fmt"

	"ptrider/internal/gridindex"
	"ptrider/internal/pricing"
	"ptrider/internal/roadnet"
)

// Substrate is the read-only routing substrate of one engine: the road
// network, the grid index's static layer (cell bounds and sorted cell
// lists), the optional ALT landmark tables, the pricing model, and the
// derived constants. Everything here is immutable after construction,
// so matchers, kinetic trees and HTTP handlers share it lock-free
// across any number of goroutines; all mutable state lives behind the
// fleet's per-vehicle locks and the engine's coordination core.
type Substrate struct {
	g     *roadnet.Graph
	grid  *gridindex.Grid
	lm    *roadnet.Landmarks
	model pricing.Model
	cfg   Config  // effective (defaulted) configuration
	speed float64 // m/s
}

// newSubstrate builds the immutable layer from a road network and an
// effective (defaulted) configuration.
func newSubstrate(g *roadnet.Graph, cfg Config) (*Substrate, error) {
	if cfg.SpeedKmh <= 0 {
		return nil, fmt.Errorf("core: speed must be positive")
	}
	if cfg.Sigma < 0 {
		return nil, fmt.Errorf("core: sigma must be non-negative")
	}
	grid, err := gridindex.Build(g, gridindex.Config{
		Cols: cfg.GridCols, Rows: cfg.GridRows, MaxBoundRadius: cfg.MaxBoundRadius,
	})
	if err != nil {
		return nil, err
	}
	model := pricing.NewModel(cfg.PriceRatio)
	if err := model.Validate(cfg.Capacity); err != nil {
		return nil, err
	}
	var lm *roadnet.Landmarks
	if cfg.NumLandmarks > 0 {
		lm, err = roadnet.SelectLandmarks(g, cfg.NumLandmarks)
		if err != nil {
			return nil, err
		}
	}
	return &Substrate{
		g:     g,
		grid:  grid,
		lm:    lm,
		model: model,
		cfg:   cfg,
		speed: cfg.SpeedKmh / 3.6,
	}, nil
}

// Graph returns the road network.
func (s *Substrate) Graph() *roadnet.Graph { return s.g }

// Grid returns the static grid index.
func (s *Substrate) Grid() *gridindex.Grid { return s.grid }

// Landmarks returns the ALT landmark tables, or nil when disabled.
func (s *Substrate) Landmarks() *roadnet.Landmarks { return s.lm }

// Model returns the pricing model.
func (s *Substrate) Model() pricing.Model { return s.model }

// Speed returns the system speed in metres per second.
func (s *Substrate) Speed() float64 { return s.speed }

// Config returns the effective configuration the substrate was built
// from.
func (s *Substrate) Config() Config { return s.cfg }
