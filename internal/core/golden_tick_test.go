package core_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/roadnet"
	"ptrider/internal/testnet"
)

// tickEngine builds one engine of the golden tick pair: same network,
// seed and configuration at every shard width, differing only in
// TickWorkers. MatchWorkers is pinned to 1 so the matcher is the
// bit-exact serial reference and any divergence is the tick's fault.
func tickEngine(t *testing.T, tickWorkers int) *core.Engine {
	t.Helper()
	g := testnet.Lattice(rand.New(rand.NewSource(77)), 12, 12, 100)
	e, err := core.NewEngine(g, core.Config{
		GridCols: 6, GridRows: 6,
		Capacity: 4, Sigma: 0.4, MaxWaitSeconds: 300,
		Seed:         77,
		MatchWorkers: 1,
		TickWorkers:  tickWorkers,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	e.AddVehiclesUniform(30)
	return e
}

// TestGoldenSerialVsParallelTick is the tick twin of the matcher's
// golden equivalence suite: a serial engine (TickWorkers 1) and a
// sharded engine (widths 2, 4, 8) replay the identical workload in
// lockstep, and every tick's merged event slice must be byte-identical
// — same events, same canonical (vehicle id, odometer) order — while
// vehicle positions stay within float tolerance and the lifecycle
// counters match exactly. This is the determinism contract that makes
// the shard width a pure performance knob.
func TestGoldenSerialVsParallelTick(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			serial := tickEngine(t, 1)
			parallel := tickEngine(t, workers)

			// One shared trip stream drives both engines identically.
			trips := rand.New(rand.NewSource(123))
			n := serial.Graph().NumVertices()
			for step := 0; step < 120; step++ {
				if step%4 == 0 {
					s := roadnet.VertexID(trips.Intn(n))
					d := roadnet.VertexID(trips.Intn(n))
					if s == d {
						d = roadnet.VertexID((int(d) + 1) % n)
					}
					riders := 1 + trips.Intn(2)
					ra, err := serial.Submit(s, d, riders)
					if err != nil {
						t.Fatalf("step %d: serial submit: %v", step, err)
					}
					rb, err := parallel.Submit(s, d, riders)
					if err != nil {
						t.Fatalf("step %d: parallel submit: %v", step, err)
					}
					if len(ra.Options) != len(rb.Options) {
						t.Fatalf("step %d: serial %d options, parallel %d",
							step, len(ra.Options), len(rb.Options))
					}
					if len(ra.Options) > 0 {
						if err := serial.Choose(ra.ID, 0); err != nil {
							t.Fatalf("step %d: serial choose: %v", step, err)
						}
						if err := parallel.Choose(rb.ID, 0); err != nil {
							t.Fatalf("step %d: parallel choose: %v", step, err)
						}
					}
				}

				ea, err := serial.Tick(2)
				if err != nil {
					t.Fatalf("step %d: serial tick: %v", step, err)
				}
				eb, err := parallel.Tick(2)
				if err != nil {
					t.Fatalf("step %d: parallel tick: %v", step, err)
				}
				if !reflect.DeepEqual(ea, eb) {
					t.Fatalf("step %d: event divergence\nserial:   %+v\nparallel: %+v", step, ea, eb)
				}
			}

			va, vb := serial.VehicleViews(0), parallel.VehicleViews(0)
			if len(va) != len(vb) {
				t.Fatalf("vehicle count: serial %d, parallel %d", len(va), len(vb))
			}
			for i := range va {
				if va[i].ID != vb[i].ID || va[i].Location != vb[i].Location {
					t.Fatalf("vehicle %d: serial at %d, parallel at %d",
						va[i].ID, va[i].Location, vb[i].Location)
				}
				if !coordEq(va[i].X, vb[i].X) || !coordEq(va[i].Y, vb[i].Y) {
					t.Fatalf("vehicle %d: serial (%v,%v), parallel (%v,%v)",
						va[i].ID, va[i].X, va[i].Y, vb[i].X, vb[i].Y)
				}
			}

			sa, sb := serial.Stats(), parallel.Stats()
			if sa.Clock != sb.Clock {
				t.Fatalf("clock: serial %v, parallel %v", sa.Clock, sb.Clock)
			}
			if sa.Requests != sb.Requests || sa.Assigned != sb.Assigned ||
				sa.Completed != sb.Completed || sa.SharedCompleted != sb.SharedCompleted {
				t.Fatalf("lifecycle divergence: serial %+v, parallel %+v", sa, sb)
			}
			if got := sb.Tick.Workers; got != workers {
				t.Fatalf("parallel Tick.Workers = %d, want %d", got, workers)
			}
		})
	}
}
