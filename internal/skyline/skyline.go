// Package skyline maintains the non-dominated result sets of PTRider
// (paper §2.5): a result ri = ⟨c, time, price⟩ dominates rj iff
//
//	(ri.time ≤ rj.time ∧ ri.price < rj.price) ∨
//	(ri.time < rj.time ∧ ri.price ≤ rj.price)
//
// — the skyline operator of Börzsönyi et al. over the (pick-up time,
// price) plane. Ties (equal time and price) do not dominate each other,
// so distinct vehicles offering identical options can coexist.
//
// The skyline also answers the threshold queries the search algorithms
// use for pruning: "would a hypothetical option at (t, p) be dominated?"
// asked with lower-bound coordinates, which is safe because dominance is
// monotone — if the optimistic (t, p) is dominated, every achievable
// option of that vehicle is too.
package skyline

import (
	"math"
)

// Dominates reports whether option (t1, p1) dominates option (t2, p2)
// under the paper's Definition 4.
func Dominates(t1, p1, t2, p2 float64) bool {
	return (t1 <= t2 && p1 < p2) || (t1 < t2 && p1 <= p2)
}

// Entry is a skyline member: a (time, price) point carrying an opaque
// payload (the concrete offer behind the point).
type Entry[T any] struct {
	Time    float64
	Price   float64
	Payload T
}

// Skyline is a mutable non-dominated set. The zero value is an empty
// skyline ready for use. Not safe for concurrent use.
type Skyline[T any] struct {
	entries []Entry[T]
}

// Len returns the number of entries.
func (s *Skyline[T]) Len() int { return len(s.entries) }

// Reset empties the skyline, retaining storage.
func (s *Skyline[T]) Reset() { s.entries = s.entries[:0] }

// IsDominated reports whether a candidate at (t, p) would be dominated
// by an existing entry.
func (s *Skyline[T]) IsDominated(t, p float64) bool {
	for i := range s.entries {
		if Dominates(s.entries[i].Time, s.entries[i].Price, t, p) {
			return true
		}
	}
	return false
}

// Insert adds the entry unless it is dominated, removing any entries the
// new one dominates. It reports whether the entry was added.
func (s *Skyline[T]) Insert(e Entry[T]) bool {
	if s.IsDominated(e.Time, e.Price) {
		return false
	}
	kept := s.entries[:0]
	for i := range s.entries {
		if !Dominates(e.Time, e.Price, s.entries[i].Time, s.entries[i].Price) {
			kept = append(kept, s.entries[i])
		}
	}
	s.entries = append(kept, e)
	return true
}

// Add is Insert for callers that have the fields rather than an Entry.
func (s *Skyline[T]) Add(t, p float64, payload T) bool {
	return s.Insert(Entry[T]{Time: t, Price: p, Payload: payload})
}

// ContainsPoint reports whether an entry with exactly the coordinates
// (t, p) is present. Ties do not dominate each other, so callers that
// want at most one offer per coordinate pair check this before Insert.
func (s *Skyline[T]) ContainsPoint(t, p float64) bool {
	for i := range s.entries {
		if s.entries[i].Time == t && s.entries[i].Price == p {
			return true
		}
	}
	return false
}

// Entries returns the skyline sorted by time ascending (price
// descending, up to ties). The slice is freshly allocated.
func (s *Skyline[T]) Entries() []Entry[T] {
	out := append([]Entry[T](nil), s.entries...)
	sortEntries(out)
	return out
}

// Sorted sorts the skyline's internal storage by time ascending (price
// ascending at ties) and returns it without copying — the
// allocation-free variant of Entries for hot paths that consume the
// result before the next mutation. The returned slice aliases the
// skyline; it is invalidated by any subsequent Insert/Add/Reset.
func (s *Skyline[T]) Sorted() []Entry[T] {
	sortEntries(s.entries)
	return s.entries
}

// sortEntries orders by time ascending, price ascending at ties.
// Skylines are small (one entry per non-dominated offer), so an
// allocation-free insertion sort beats sort.Slice, whose reflection
// footprint showed up as a leading allocator in match profiles.
func sortEntries[T any](out []Entry[T]) {
	for i := 1; i < len(out); i++ {
		e := out[i]
		j := i - 1
		for j >= 0 && (out[j].Time > e.Time || (out[j].Time == e.Time && out[j].Price > e.Price)) {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = e
	}
}

// MinPrice returns the smallest price in the skyline, or +Inf when
// empty.
func (s *Skyline[T]) MinPrice() float64 {
	best := math.Inf(1)
	for i := range s.entries {
		if s.entries[i].Price < best {
			best = s.entries[i].Price
		}
	}
	return best
}

// MinTimeAtPrice returns the earliest time among entries with price ≤ p,
// or +Inf when none qualifies. The ring-termination tests of single- and
// dual-side search use it: expansion can stop at radius L when an entry
// with price ≤ the price floor exists at time ≤ L.
func (s *Skyline[T]) MinTimeAtPrice(p float64) float64 {
	best := math.Inf(1)
	for i := range s.entries {
		if s.entries[i].Price <= p && s.entries[i].Time < best {
			best = s.entries[i].Time
		}
	}
	return best
}
