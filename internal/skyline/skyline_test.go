package skyline_test

import (
	"math"
	"math/rand"
	"testing"

	"ptrider/internal/skyline"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		t1, p1, t2, p2 float64
		want           bool
	}{
		{1, 1, 2, 2, true},  // strictly better in both
		{1, 2, 1, 3, true},  // equal time, lower price
		{1, 2, 2, 2, true},  // lower time, equal price
		{1, 2, 1, 2, false}, // identical: no strict component
		{2, 1, 1, 2, false}, // incomparable
		{1, 3, 2, 2, false}, // better time, worse price
		{3, 3, 2, 2, false}, // strictly worse
	}
	for _, c := range cases {
		if got := skyline.Dominates(c.t1, c.p1, c.t2, c.p2); got != c.want {
			t.Errorf("Dominates(%v,%v | %v,%v) = %v, want %v", c.t1, c.p1, c.t2, c.p2, got, c.want)
		}
	}
}

func TestInsertRejectsDominated(t *testing.T) {
	var s skyline.Skyline[string]
	if !s.Add(10, 5, "a") {
		t.Fatal("first insert rejected")
	}
	if s.Add(12, 6, "b") {
		t.Fatal("dominated insert accepted")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestInsertEvictsDominated(t *testing.T) {
	var s skyline.Skyline[string]
	s.Add(10, 5, "a")
	s.Add(5, 10, "b")
	s.Add(4, 4, "c") // dominates both
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if e := s.Entries()[0]; e.Payload != "c" {
		t.Fatalf("surviving payload %q", e.Payload)
	}
}

func TestTiesCoexist(t *testing.T) {
	var s skyline.Skyline[int]
	s.Add(3, 3, 1)
	if !s.Add(3, 3, 2) {
		t.Fatal("tie rejected; identical points do not dominate each other")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.ContainsPoint(3, 3) {
		t.Fatal("ContainsPoint missed an existing coordinate pair")
	}
	if s.ContainsPoint(3, 4) {
		t.Fatal("ContainsPoint found a non-member")
	}
}

func TestEntriesSortedByTime(t *testing.T) {
	var s skyline.Skyline[int]
	s.Add(5, 1, 0)
	s.Add(1, 5, 1)
	s.Add(3, 3, 2)
	es := s.Entries()
	if len(es) != 3 {
		t.Fatalf("Len = %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].Time < es[i-1].Time {
			t.Fatalf("Entries unsorted: %+v", es)
		}
	}
}

func TestMinPriceAndMinTimeAtPrice(t *testing.T) {
	var s skyline.Skyline[int]
	if !math.IsInf(s.MinPrice(), 1) {
		t.Error("MinPrice of empty skyline should be +Inf")
	}
	s.Add(5, 1, 0)
	s.Add(1, 9, 1)
	if got := s.MinPrice(); got != 1 {
		t.Errorf("MinPrice = %v", got)
	}
	if got := s.MinTimeAtPrice(1); got != 5 {
		t.Errorf("MinTimeAtPrice(1) = %v", got)
	}
	if got := s.MinTimeAtPrice(9); got != 1 {
		t.Errorf("MinTimeAtPrice(9) = %v", got)
	}
	if got := s.MinTimeAtPrice(0.5); !math.IsInf(got, 1) {
		t.Errorf("MinTimeAtPrice(0.5) = %v, want +Inf", got)
	}
}

// TestAgainstBruteForce inserts random points and compares the skyline
// with a quadratic reference implementation.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		type pt struct{ t, p float64 }
		pts := make([]pt, n)
		for i := range pts {
			// Small integer coordinates force plenty of ties.
			pts[i] = pt{float64(rng.Intn(8)), float64(rng.Intn(8))}
		}
		var s skyline.Skyline[int]
		for i, q := range pts {
			s.Add(q.t, q.p, i)
		}
		// Reference: a point survives iff no other point dominates it;
		// exact duplicates collapse to one (matching Insert's behaviour
		// of rejecting what IsDominated allows but keeping first of
		// exact ties — both orders yield the same coordinate multiset
		// because ties never dominate).
		want := map[pt]bool{}
		for _, q := range pts {
			dominated := false
			for _, r := range pts {
				if skyline.Dominates(r.t, r.p, q.t, q.p) {
					dominated = true
					break
				}
			}
			if !dominated {
				want[q] = true
			}
		}
		got := map[pt]bool{}
		for _, e := range s.Entries() {
			got[pt{e.Time, e.Price}] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d distinct skyline points, want %d\ngot %v\nwant %v", trial, len(got), len(want), got, want)
		}
		for q := range want {
			if !got[q] {
				t.Fatalf("trial %d: missing skyline point %v", trial, q)
			}
		}
	}
}

func TestIsDominatedThresholdQuery(t *testing.T) {
	var s skyline.Skyline[int]
	s.Add(10, 5, 0)
	if !s.IsDominated(11, 6) {
		t.Error("worse point should be dominated")
	}
	if s.IsDominated(10, 5) {
		t.Error("identical point is not dominated")
	}
	if s.IsDominated(9, 100) {
		t.Error("earlier but pricier point is not dominated")
	}
}

func TestReset(t *testing.T) {
	var s skyline.Skyline[int]
	s.Add(1, 1, 0)
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset did not empty the skyline")
	}
	if !s.Add(2, 2, 1) {
		t.Fatal("skyline unusable after Reset")
	}
}
