package ptrider_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ptrider"
)

// buildScalingSystem returns a loaded city for throughput measurement.
func buildScalingSystem(t *testing.T, workers int) *ptrider.System {
	t.Helper()
	net, err := ptrider.GenerateCity(ptrider.CityConfig{Width: 24, Height: 24, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ptrider.New(net, ptrider.Config{NumTaxis: 150, Seed: 42, MatchWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	// Load the fleet with some accepted trips so probes are non-trivial.
	for i := 0; i < 60; i++ {
		req, err := sys.Request(sys.RandomVertex(), sys.RandomVertex(), 1)
		if err != nil {
			continue
		}
		if len(req.Options) > 0 {
			_ = sys.Choose(req.ID, 0)
		}
	}
	return sys
}

// submitThroughput measures completed submit+decline cycles per second
// using `clients` concurrent goroutines for the given wall duration.
func submitThroughput(t *testing.T, sys *ptrider.System, clients int, d time.Duration) float64 {
	t.Helper()
	probes := make([][2]ptrider.VertexID, 256)
	for i := range probes {
		s, dd := sys.RandomVertex(), sys.RandomVertex()
		for s == dd {
			dd = sys.RandomVertex()
		}
		probes[i] = [2]ptrider.VertexID{s, dd}
	}
	var ops atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; ; i += clients {
				select {
				case <-stop:
					return
				default:
				}
				p := probes[i%len(probes)]
				req, err := sys.Request(p[0], p[1], 1)
				if err != nil {
					t.Error(err)
					return
				}
				_ = sys.Decline(req.ID)
				ops.Add(1)
			}
		}(c)
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	return float64(ops.Load()) / d.Seconds()
}

// TestParallelSubmitScaling pins the refactor's throughput claim where
// it is measurable: on a host with ≥4 cores, concurrent submissions
// against the sharded engine must deliver >1.5× the single-client
// throughput. On smaller hosts the test skips (a single core cannot
// exhibit parallel speedup); BENCH_seed.json records the single-core
// baseline instead.
func TestParallelSubmitScaling(t *testing.T) {
	cores := runtime.NumCPU()
	if cores < 4 {
		t.Skipf("need >=4 cores to measure parallel scaling, have %d", cores)
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	sys := buildScalingSystem(t, 0)

	// Warm the shared distance memo so both measurements run hot.
	_ = submitThroughput(t, sys, 1, 300*time.Millisecond)

	serial := submitThroughput(t, sys, 1, 2*time.Second)
	parallel := submitThroughput(t, sys, cores, 2*time.Second)
	ratio := parallel / serial
	t.Logf("serial %.0f ops/s, parallel(%d) %.0f ops/s, ratio %.2fx", serial, cores, parallel, ratio)
	if ratio < 1.5 {
		t.Fatalf("parallel submit throughput only %.2fx serial (want >1.5x on %d cores)", ratio, cores)
	}
}
