package ptrider_test

import (
	"testing"

	"ptrider"
)

func TestHourlyExposure(t *testing.T) {
	net := testCity(t)
	trips, err := ptrider.GenerateWorkload(net, ptrider.WorkloadConfig{
		NumTrips: 60, DaySeconds: 7200, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ptrider.New(net, ptrider.Config{NumTaxis: 10, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunWorkload(trips, ptrider.SimOptions{TickSeconds: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hourly) == 0 {
		t.Fatal("no hourly buckets exposed")
	}
	total := 0
	for i, h := range res.Hourly {
		if i > 0 && h.Hour <= res.Hourly[i-1].Hour {
			t.Fatal("hourly buckets not chronological")
		}
		total += h.Submitted
	}
	if total != res.Submitted {
		t.Fatalf("hourly submitted %d != total %d", total, res.Submitted)
	}
}

func TestFailureInjectionThroughFacade(t *testing.T) {
	net := testCity(t)
	trips, err := ptrider.GenerateWorkload(net, ptrider.WorkloadConfig{
		NumTrips: 40, DaySeconds: 300, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ptrider.New(net, ptrider.Config{NumTaxis: 12, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunWorkload(trips, ptrider.SimOptions{
		TickSeconds: 2, Seed: 13, FailuresPerHour: 60,
	})
	if err != nil {
		t.Fatalf("RunWorkload with failures: %v", err)
	}
	if res.Stats.ActiveVehicles >= 12 {
		t.Fatalf("no failures took effect: %d active", res.Stats.ActiveVehicles)
	}
}

func TestAddVehicleAtAndSchedules(t *testing.T) {
	net := testCity(t)
	sys, err := ptrider.New(net, ptrider.Config{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumVehicles() != 0 {
		t.Fatal("fresh system has vehicles")
	}
	id := sys.AddVehicleAt(7)
	sys.AddVehicles(2)
	if sys.NumVehicles() != 3 {
		t.Fatalf("NumVehicles = %d", sys.NumVehicles())
	}
	loc, schedules, err := sys.VehicleSchedules(id)
	if err != nil {
		t.Fatal(err)
	}
	if loc != 7 || len(schedules) != 0 {
		t.Fatalf("idle vehicle: loc=%d schedules=%v", loc, schedules)
	}
	if _, _, err := sys.VehicleSchedules(99); err == nil {
		t.Fatal("unknown vehicle accepted")
	}
	if sys.Network() != net {
		t.Fatal("Network accessor broken")
	}
	p := net.VertexPoint(0)
	if p.X == 0 && p.Y == 0 {
		// Vertex 0 is jittered around the origin; both exactly zero
		// would be suspicious but not impossible — just ensure the
		// call works on every vertex.
		_ = p
	}
	if s := sys.Stats(); s.ActiveVehicles != 3 {
		t.Fatalf("stats vehicles = %d", s.ActiveVehicles)
	}
}

func TestCustomPriceRatio(t *testing.T) {
	net := testCity(t)
	flat := func(n int) float64 { return 1.0 } // price = detour + trip distance
	sys, err := ptrider.New(net, ptrider.Config{NumTaxis: 3, PriceRatio: flat, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	req, err := sys.Request(4, 90, 1)
	if err != nil || len(req.Options) == 0 {
		t.Fatalf("request: %v", err)
	}
	// With ratio 1 the cheapest option's price is exactly the pickup
	// distance plus twice the trip distance for an idle fleet.
	o := req.Options[0]
	want := o.PickupMeters + 2*tripDist(t, sys, 4, 90)
	if diff := o.Price - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("flat-ratio price = %v, want %v", o.Price, want)
	}
}

// tripDist extracts dist(s,d) from a second zero-wait request quote:
// for an idle vehicle at the pickup itself this is not available
// directly via the facade, so derive it from the option algebra —
// price = pickup + 2·sd with ratio 1 ⇒ sd = (price − pickup) / 2.
func tripDist(t *testing.T, sys *ptrider.System, s, d ptrider.VertexID) float64 {
	t.Helper()
	req, err := sys.Request(s, d, 1)
	if err != nil || len(req.Options) == 0 {
		t.Fatalf("tripDist probe: %v", err)
	}
	o := req.Options[0]
	return (o.Price - o.PickupMeters) / 2
}
