// Benchmarks regenerating the paper's quantitative artefacts (see
// EXPERIMENTS.md). Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers depend on the host (the demo used an i7 3.6 GHz PC);
// the reproduction targets are the orderings: naive ≫ single-side ≳
// dual-side on uniform load, dual-side winning on the adversarial
// near-s/far-d workload, and sub-millisecond matching at city scale.
package ptrider_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/gridindex"
	"ptrider/internal/kinetic"
	"ptrider/internal/roadnet"
	"ptrider/internal/sim"
	"ptrider/internal/skyline"
)

// benchWorld is the shared loaded system: a 32x32 city, 200 taxis
// warmed with a quarter hour of accepted trips.
type benchWorld struct {
	g      *roadnet.Graph
	eng    *core.Engine
	probes [][2]roadnet.VertexID
}

var (
	worldOnce sync.Once
	world     *benchWorld
)

func loadedWorld(b *testing.B) *benchWorld {
	b.Helper()
	worldOnce.Do(func() {
		g, err := gen.GenerateNetwork(gen.CityConfig{Width: 32, Height: 32, RemoveFrac: 0.15, Seed: 1})
		if err != nil {
			panic(err)
		}
		eng, err := core.NewEngine(g, core.Config{
			GridCols: 16, GridRows: 16, Capacity: 4,
			MaxWaitSeconds: 300, Sigma: 0.4, Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		eng.AddVehiclesUniform(200)
		trips, err := gen.GenerateTrips(g, gen.TripConfig{NumTrips: 250, DaySeconds: 900, Seed: 2})
		if err != nil {
			panic(err)
		}
		s, err := sim.New(eng, trips, sim.Config{TickSeconds: 2, Seed: 2, EndSeconds: 900})
		if err != nil {
			panic(err)
		}
		if _, err := s.Run(); err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(3))
		probes := make([][2]roadnet.VertexID, 0, 1024)
		for len(probes) < 1024 {
			s := roadnet.VertexID(rng.Intn(g.NumVertices()))
			d := roadnet.VertexID(rng.Intn(g.NumVertices()))
			if s != d {
				probes = append(probes, [2]roadnet.VertexID{s, d})
			}
		}
		// Warm the shared distance memo over every probe once, so the
		// benchmark that happens to run first doesn't pay the cold
		// cache for the others (the serial/parallel submit pair must
		// measure matching, not memo warming).
		for _, p := range probes {
			if _, _, err := eng.MatchOnce(core.AlgoDualSide, p[0], p[1], 1); err != nil {
				panic(err)
			}
		}
		world = &benchWorld{g: g, eng: eng, probes: probes}
	})
	return world
}

// BenchmarkMatch — E3: one matching per op, per algorithm, on the
// loaded 200-taxi city.
func BenchmarkMatch(b *testing.B) {
	w := loadedWorld(b)
	for _, algo := range []core.Algorithm{core.AlgoNaive, core.AlgoSingleSide, core.AlgoDualSide} {
		b.Run(algo.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := w.probes[i%len(w.probes)]
				if _, _, err := w.eng.MatchOnce(algo, p[0], p[1], 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEndRequest — E2: the full request lifecycle the demo
// measures as "response time": submit, read options, choose or decline.
func BenchmarkEndToEndRequest(b *testing.B) {
	w := loadedWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := w.probes[i%len(w.probes)]
		rec, err := w.eng.Submit(p[0], p[1], 1)
		if err != nil {
			b.Fatal(err)
		}
		// Decline so the fleet state stays comparable across iterations.
		if err := w.eng.Decline(rec.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubmitSerial is the single-client request-answering
// baseline: one goroutine submits and declines against the loaded
// city. Pair it with BenchmarkSubmitParallel to measure multi-core
// scaling of the sharded engine (BENCH_seed.json records the ratio).
func BenchmarkSubmitSerial(b *testing.B) {
	w := loadedWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := w.probes[i%len(w.probes)]
		rec, err := w.eng.Submit(p[0], p[1], 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.eng.Decline(rec.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubmitParallel issues the same workload from GOMAXPROCS
// client goroutines at once. The engine holds no global lock during
// matching — the routing substrate is immutable, the distance memo is
// sharded, and vehicles are probed under per-vehicle locks — so
// throughput (ops/s, the inverse of ns/op here) should scale with
// cores; on a ≥4-core host expect >1.5× BenchmarkSubmitSerial.
func BenchmarkSubmitParallel(b *testing.B) {
	w := loadedWorld(b)
	var next atomic.Int64
	var firstErr atomic.Pointer[error]
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1) - 1)
			p := w.probes[i%len(w.probes)]
			rec, err := w.eng.Submit(p[0], p[1], 1)
			if err == nil {
				err = w.eng.Decline(rec.ID)
			}
			if err != nil {
				// b.Fatal must not run on RunParallel workers; record
				// and fail from the benchmark goroutine below.
				firstErr.CompareAndSwap(nil, &err)
				return
			}
		}
	})
	if errp := firstErr.Load(); errp != nil {
		b.Fatal(*errp)
	}
}

// batchBenchWorld is the coalesced-batch benchmark world: the loaded
// city re-used from loadedWorld plus a precomputed hot cell (the most
// populated grid cell) and item sets for the batch workloads.
type batchBenchWorld struct {
	*benchWorld
	hotcell   []core.BatchItem // origins all in one cell
	scattered []core.BatchItem // origins spread over the city
}

var (
	batchOnce  sync.Once
	batchState *batchBenchWorld
)

const batchBenchSize = 16

func batchWorld(b *testing.B) *batchBenchWorld {
	b.Helper()
	w := loadedWorld(b)
	batchOnce.Do(func() {
		grid := w.eng.Grid()
		best := gridindex.CellID(0)
		for c := 0; c < grid.NumCells(); c++ {
			if len(grid.Cell(gridindex.CellID(c)).Vertices) > len(grid.Cell(best).Vertices) {
				best = gridindex.CellID(c)
			}
		}
		verts := grid.Cell(best).Vertices
		rng := rand.New(rand.NewSource(21))
		n := w.g.NumVertices()
		var hot, scat []core.BatchItem
		for len(hot) < batchBenchSize {
			s := verts[rng.Intn(len(verts))]
			d := roadnet.VertexID(rng.Intn(n))
			if s == d {
				continue
			}
			hot = append(hot, core.BatchItem{S: s, D: d, Riders: 1, Constraints: core.DefaultConstraints()})
		}
		for len(scat) < batchBenchSize {
			s := roadnet.VertexID(rng.Intn(n))
			d := roadnet.VertexID(rng.Intn(n))
			if s == d {
				continue
			}
			scat = append(scat, core.BatchItem{S: s, D: d, Riders: 1, Constraints: core.DefaultConstraints()})
		}
		batchState = &batchBenchWorld{benchWorld: w, hotcell: hot, scattered: scat}
	})
	return batchState
}

// BenchmarkSubmitBatch measures the coalesced batch pipeline on the
// loaded city (dual-side is the engine default here via SetAlgorithm).
// Each op processes one 16-item quote-only batch against a cold
// distance memo, so the exact-search counts are comparable across
// sub-benchmarks; dist_calls/op reports them. "hotcell" shares one
// origin cell across all items (one ring frontier, multi-target
// passes); "cold" scatters the origins (several groups per wave);
// "hotcell-perrequest" issues the same items through per-request Submit
// — the baseline the coalescing win is measured against (ISSUE 2
// acceptance: ≥2x fewer DistCalls, ≥50% fewer allocs/op).
func BenchmarkSubmitBatch(b *testing.B) {
	w := batchWorld(b)
	if err := w.eng.SetAlgorithm(core.AlgoDualSide); err != nil {
		b.Fatal(err)
	}
	runBatch := func(b *testing.B, items []core.BatchItem) {
		b.Helper()
		b.ReportAllocs()
		var calls int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer() // the cache reset is harness setup, not batch cost
			w.eng.ResetDistCache()
			before := w.eng.DistCalls()
			b.StartTimer()
			if _, err := w.eng.SubmitBatch(items); err != nil {
				b.Fatal(err)
			}
			calls += w.eng.DistCalls() - before
		}
		b.StopTimer()
		b.ReportMetric(float64(calls)/float64(b.N), "dist_calls/op")
	}
	b.Run("cold", func(b *testing.B) { runBatch(b, w.scattered) })
	b.Run("hotcell", func(b *testing.B) { runBatch(b, w.hotcell) })
	b.Run("hotcell-perrequest", func(b *testing.B) {
		b.ReportAllocs()
		var calls int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			w.eng.ResetDistCache()
			before := w.eng.DistCalls()
			b.StartTimer()
			for _, it := range w.hotcell {
				rec, err := w.eng.Submit(it.S, it.D, it.Riders)
				if err != nil {
					b.Fatal(err)
				}
				if err := w.eng.Decline(rec.ID); err != nil {
					b.Fatal(err)
				}
			}
			calls += w.eng.DistCalls() - before
		}
		b.StopTimer()
		b.ReportMetric(float64(calls)/float64(b.N), "dist_calls/op")
	})
}

// BenchmarkAblate — E8: dual-side matching with optimisations disabled.
func BenchmarkAblate(b *testing.B) {
	g, err := gen.GenerateNetwork(gen.CityConfig{Width: 24, Height: 24, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"full", nil},
		{"no-lower-bounds", func(c *core.Config) { c.DisableLB = true }},
		{"no-empty-lemma", func(c *core.Config) { c.DisableEmptyLemma = true }},
	}
	for _, v := range variants {
		cfg := core.Config{GridCols: 12, GridRows: 12, Capacity: 4, MaxWaitSeconds: 300, Sigma: 0.4, Seed: 4}
		if v.mut != nil {
			v.mut(&cfg)
		}
		eng, err := core.NewEngine(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		eng.AddVehiclesUniform(150)
		trips, _ := gen.GenerateTrips(g, gen.TripConfig{NumTrips: 150, DaySeconds: 600, Seed: 5})
		s, _ := sim.New(eng, trips, sim.Config{TickSeconds: 2, Seed: 5, EndSeconds: 600})
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sv := roadnet.VertexID(rng.Intn(g.NumVertices()))
				dv := roadnet.VertexID(rng.Intn(g.NumVertices()))
				if sv == dv {
					continue
				}
				if _, _, err := eng.MatchOnce(core.AlgoDualSide, sv, dv, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGridBuild — E6: index construction across resolutions.
func BenchmarkGridBuild(b *testing.B) {
	g, err := gen.GenerateNetwork(gen.CityConfig{Width: 32, Height: 32, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	for _, res := range []int{8, 16, 32} {
		b.Run(map[int]string{8: "8x8", 16: "16x16", 32: "32x32"}[res], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := gridindex.Build(g, gridindex.Config{Cols: res, Rows: res}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGridBounds — E6: LB/UB point queries.
func BenchmarkGridBounds(b *testing.B) {
	g, err := gen.GenerateNetwork(gen.CityConfig{Width: 32, Height: 32, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	grid, err := gridindex.Build(g, gridindex.Config{Cols: 16, Rows: 16})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	n := g.NumVertices()
	b.Run("LB", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			grid.LB(roadnet.VertexID(rng.Intn(n)), roadnet.VertexID(rng.Intn(n)))
		}
	})
	b.Run("UB", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			grid.UB(roadnet.VertexID(rng.Intn(n)), roadnet.VertexID(rng.Intn(n)))
		}
	})
}

// BenchmarkVehicleListUpdate — E6: the dynamic list updates behind the
// demo's location/pickup/dropoff update workload.
func BenchmarkVehicleListUpdate(b *testing.B) {
	lists := gridindex.NewVehicleLists(256)
	rng := rand.New(rand.NewSource(10))
	cells := make([]gridindex.CellID, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := gridindex.VehicleID(i % 4096)
		if i%2 == 0 {
			lists.PlaceEmpty(id, gridindex.CellID(rng.Intn(256)))
		} else {
			for j := range cells {
				cells[j] = gridindex.CellID(rng.Intn(256))
			}
			lists.PlaceNonEmpty(id, cells)
		}
	}
}

// BenchmarkFleetTick — E2/E6: moving the whole roaming fleet one second
// (the demo's periodic location updates).
func BenchmarkFleetTick(b *testing.B) {
	g, err := gen.GenerateNetwork(gen.CityConfig{Width: 32, Height: 32, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(g, core.Config{GridCols: 16, GridRows: 16, Capacity: 4, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	eng.AddVehiclesUniform(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Tick(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKineticQuote — §3.3: inserting a request into a loaded
// kinetic tree with lazy bound evaluation.
func BenchmarkKineticQuote(b *testing.B) {
	w := loadedWorld(b)
	s := roadnet.NewSearcher(w.g)
	oracleM := searcherMetric{s: s}
	tree := kinetic.New(oracleM, 4, 8, 0, 0)
	rng := rand.New(rand.NewSource(12))
	reqID := kinetic.RequestID(1)
	for tree.NumRequests() < 2 {
		sv := roadnet.VertexID(rng.Intn(w.g.NumVertices()))
		dv := roadnet.VertexID(rng.Intn(w.g.NumVertices()))
		if sv == dv {
			continue
		}
		sd := s.Dist(sv, dv)
		req := kinetic.Request{ID: reqID, S: sv, D: dv, Riders: 1, SD: sd, ServiceLimit: 1.6 * sd, WaitBudget: 1e6}
		if cands := tree.Quote(req); len(cands) > 0 {
			if err := tree.Commit(req, cands[0]); err != nil {
				b.Fatal(err)
			}
			reqID++
		}
	}
	probe := kinetic.Request{ID: 999, S: 5, D: 800, Riders: 1, SD: s.Dist(5, 800), ServiceLimit: 1.6 * s.Dist(5, 800), WaitBudget: 1e6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Quote(probe)
	}
}

type searcherMetric struct{ s *roadnet.Searcher }

func (m searcherMetric) Dist(u, v roadnet.VertexID) float64 { return m.s.Dist(u, v) }
func (m searcherMetric) LB(u, v roadnet.VertexID) float64   { return 0 }

// BenchmarkShortestPath — substrate: point-to-point queries on the city.
func BenchmarkShortestPath(b *testing.B) {
	g, err := gen.GenerateNetwork(gen.CityConfig{Width: 48, Height: 48, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	s := roadnet.NewSearcher(g)
	bi := roadnet.NewBiSearcher(g)
	rng := rand.New(rand.NewSource(14))
	n := g.NumVertices()
	b.Run("astar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Dist(roadnet.VertexID(rng.Intn(n)), roadnet.VertexID(rng.Intn(n)))
		}
	})
	b.Run("bidirectional", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bi.Dist(roadnet.VertexID(rng.Intn(n)), roadnet.VertexID(rng.Intn(n)))
		}
	})
}

// BenchmarkSkyline — Definition 4 maintenance under churn.
func BenchmarkSkyline(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	b.ReportAllocs()
	var sky skyline.Skyline[int]
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			sky.Reset()
		}
		sky.Add(rng.Float64()*1000, rng.Float64()*100, i)
	}
}

// BenchmarkDayThroughput — E2 at benchmark scale: a whole mini-day per
// iteration (requests + choices + movement), reporting wall time per
// simulated day.
func BenchmarkDayThroughput(b *testing.B) {
	g, err := gen.GenerateNetwork(gen.CityConfig{Width: 24, Height: 24, Seed: 16})
	if err != nil {
		b.Fatal(err)
	}
	trips, err := gen.GenerateTrips(g, gen.TripConfig{NumTrips: 300, DaySeconds: 900, Seed: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := core.NewEngine(g, core.Config{GridCols: 12, GridRows: 12, Capacity: 4, Seed: 16})
		if err != nil {
			b.Fatal(err)
		}
		eng.AddVehiclesUniform(80)
		s, err := sim.New(eng, trips, sim.Config{TickSeconds: 2, Seed: 16})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
