// Seaside: the paper's motivating scenario (§1). A couple finishes
// dinner at the seaside, far from the city centre, and wants to travel
// home. Few vehicles are nearby: getting one quickly costs extra
// (a detour just for them), while waiting for a taxi that is already
// heading their way costs less. PTRider returns both options; the
// couple picks.
//
//	go run ./examples/seaside
package main

import (
	"fmt"
	"log"

	"ptrider"
)

func main() {
	// A single coast road: 21 stops, 500 m apart. Stop 0 is the seaside
	// restaurant, stop 4 is home, stops 10+ are the city centre.
	const stops = 21
	points := make([]ptrider.Point, stops)
	var edges []ptrider.Edge
	for i := 0; i < stops; i++ {
		points[i] = ptrider.Point{X: float64(i) * 500}
		if i > 0 {
			edges = append(edges, ptrider.Edge{U: int32(i - 1), V: int32(i), Weight: 500})
		}
	}
	coast, err := ptrider.NewNetwork(points, edges)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := ptrider.New(coast, ptrider.Config{
		Capacity:       4,
		SpeedKmh:       48,
		MaxWaitSeconds: 300,
		Sigma:          0.4,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Taxi A idles just one stop from the seaside.
	taxiA := sys.AddVehicleAt(1)
	// Taxi B idles mid-way — too far to be quick, too empty to be cheap.
	taxiB := sys.AddVehicleAt(6)
	// Taxi C is in the city centre and already serving a rider whose
	// destination is the seaside — it will pass right by the couple.
	taxiC := sys.AddVehicleAt(10)
	centreRider, err := sys.Request(10, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Choose(centreRider.ID, 0); err != nil {
		log.Fatal(err)
	}

	// The couple (2 riders) books from the seaside (0) to home (4).
	couple, err := sys.Request(0, 4, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The couple at the seaside sees:")
	for _, o := range couple.Options {
		var who string
		switch o.Vehicle {
		case taxiA:
			who = "taxi A (idle nearby — detours just for you)"
		case taxiB:
			who = "taxi B (idle mid-way)"
		case taxiC:
			who = "taxi C (already bringing a rider to the seaside)"
		}
		fmt.Printf("  pickup in %5.1f min  price %6.0f   %s\n",
			o.PickupSeconds/60, o.Price, who)
	}
	fmt.Println()
	fmt.Println("Taxi B never appears: its offer is dominated — later than A and")
	fmt.Println("pricier than C. The skyline keeps only the real trade-offs:")
	fmt.Println("pay more to leave now, or wait for the taxi already coming.")

	if len(couple.Options) != 2 {
		log.Fatalf("expected exactly 2 skyline options, got %d", len(couple.Options))
	}
	fast, cheap := couple.Options[0], couple.Options[1]
	if fast.Vehicle != taxiA || cheap.Vehicle != taxiC {
		log.Fatalf("unexpected skyline: %+v", couple.Options)
	}
	if cheap.Price >= fast.Price {
		log.Fatal("waiting longer should be cheaper")
	}
	fmt.Printf("\nThe couple is patient: they take taxi C and save %.0f.\n",
		fast.Price-cheap.Price)
	if err := sys.Choose(couple.ID, cheap.Index); err != nil {
		log.Fatal(err)
	}
	for status := ""; status != "completed"; {
		if _, err := sys.Tick(5); err != nil {
			log.Fatal(err)
		}
		status, _ = sys.RequestStatus(couple.ID)
	}
	fmt.Printf("Home safe after %.0f minutes of simulated time.\n",
		sys.Stats().ClockSeconds/60)
}
