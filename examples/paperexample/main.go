// Paperexample reproduces the worked example of the PTRider paper
// (§2.4–§2.5, Fig. 1a) end to end: vehicle c1 serves
// R1 = ⟨v2, v16, 2, 5, 0.2⟩ from v1, vehicle c2 idles at v13, and
// request R2 = ⟨v12, v17, 2, 5, 0.2⟩ receives exactly the two
// non-dominated results the paper prints:
//
//	r1 = ⟨c1, 14, 4⟩   (later pickup, lower price)
//	r2 = ⟨c2, 8, 8.8⟩  (earlier pickup, higher price)
//
//	go run ./examples/paperexample
package main

import (
	"fmt"
	"log"
	"math"

	"ptrider"
)

func main() {
	// The 17-vertex network of Fig. 1(a), reconstructed to be
	// consistent with every number in the prose (the PDF's edge labels
	// are unreadable; see DESIGN.md §5). Vertex vK is id K-1.
	v := func(k int) ptrider.VertexID { return ptrider.VertexID(k - 1) }
	points := make([]ptrider.Point, 17)
	for i := range points {
		points[i] = ptrider.Point{X: float64(i) * 0.001}
	}
	edges := []ptrider.Edge{
		{U: v(1), V: v(2), Weight: 6},
		{U: v(2), V: v(12), Weight: 8},
		{U: v(2), V: v(16), Weight: 12},
		{U: v(12), V: v(16), Weight: 4},
		{U: v(16), V: v(17), Weight: 3},
		{U: v(12), V: v(17), Weight: 7},
		{U: v(13), V: v(12), Weight: 8},
	}
	filler := [][2]int{
		{3, 2}, {4, 3}, {5, 4}, {6, 5}, {7, 6}, {8, 7}, {9, 8},
		{10, 9}, {11, 10}, {14, 13}, {15, 14},
	}
	for _, f := range filler {
		edges = append(edges, ptrider.Edge{U: v(f[0]), V: v(f[1]), Weight: 30})
	}
	net, err := ptrider.NewNetwork(points, edges)
	if err != nil {
		log.Fatal(err)
	}

	// Weights are the paper's abstract units; at 3.6 km/h one unit of
	// distance is one second, so printed times equal the paper's
	// distances. Global w = 5 units, σ = 0.2 as in the example.
	sys, err := ptrider.New(net, ptrider.Config{
		Capacity:       4,
		SpeedKmh:       3.6,
		MaxWaitSeconds: 5,
		Sigma:          0.2,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}

	c1 := sys.AddVehicleAt(v(1))
	c2 := sys.AddVehicleAt(v(13))

	// Assign R1 = ⟨v2, v16, 2, 5, 0.2⟩ to c1 — its trip schedule
	// becomes ⟨v1, v2, v16⟩ as in the figure.
	r1, err := sys.Request(v(2), v(16), 2)
	if err != nil {
		log.Fatal(err)
	}
	if len(r1.Options) != 1 || r1.Options[0].Vehicle != c1 {
		log.Fatalf("R1 should be offered c1 only, got %+v", r1.Options)
	}
	if err := sys.Choose(r1.ID, 0); err != nil {
		log.Fatal(err)
	}
	loc, schedules, _ := sys.VehicleSchedules(c1)
	fmt.Printf("c1 at v%d, trip schedule:", loc+1)
	for _, stop := range schedules[0] {
		fmt.Printf(" v%d(%s)", stop.Vertex+1, stop.Kind)
	}
	fmt.Println()

	// R2 = ⟨v12, v17, 2, 5, 0.2⟩.
	r2, err := sys.Request(v(12), v(17), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nR2 = <v12, v17, 2, 5, 0.2> receives %d options:\n", len(r2.Options))
	for _, o := range r2.Options {
		name := "c1"
		if o.Vehicle == c2 {
			name = "c2"
		}
		fmt.Printf("  <%s, %2.0f, %.1f>\n", name, o.PickupSeconds, o.Price)
	}

	// Assert the paper's numbers exactly.
	if len(r2.Options) != 2 {
		log.Fatalf("want 2 options, got %d", len(r2.Options))
	}
	byName := map[ptrider.VertexID]ptrider.Option{}
	for _, o := range r2.Options {
		byName[o.Vehicle] = o
	}
	check := func(name string, o ptrider.Option, wantTime, wantPrice float64) {
		if math.Abs(o.PickupSeconds-wantTime) > 1e-9 || math.Abs(o.Price-wantPrice) > 1e-9 {
			log.Fatalf("%s: got (%v, %v), paper says (%v, %v)", name, o.PickupSeconds, o.Price, wantTime, wantPrice)
		}
	}
	check("r1=<c1,14,4>", byName[c1], 14, 4)
	check("r2=<c2,8,8.8>", byName[c2], 8, 8.8)
	fmt.Println("\nboth results match the paper: <c1, 14, 4> and <c2, 8, 8.8> ✓")
}
