// Cityday replays a compressed city day against PTRider and prints the
// statistics the demo's website interface shows (paper §4.2): average
// response time, sharing rate, options per request, served fraction.
//
// It is a miniature of cmd/ptrider-sim exercising the public API only.
//
//	go run ./examples/cityday
package main

import (
	"fmt"
	"log"

	"ptrider"
)

func main() {
	city, err := ptrider.GenerateCity(ptrider.CityConfig{
		Width: 24, Height: 24, RemoveFrac: 0.15, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Two simulated hours, 1,500 trips, 60 taxis — a 1:300 rendition of
	// the demo's 17,000-taxi day.
	workload, err := ptrider.GenerateWorkload(city, ptrider.WorkloadConfig{
		NumTrips: 1500, DaySeconds: 7200, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	sys, err := ptrider.New(city, ptrider.Config{
		NumTaxis:  60,
		Algorithm: "dual-side",
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replaying %d trips over %d taxis …\n", len(workload), sys.NumVehicles())
	res, err := sys.RunWorkload(workload, ptrider.SimOptions{
		TickSeconds: 2,
		Choice:      "utility", // riders trade pick-up time against price
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n-- statistics panel --")
	fmt.Printf("requests submitted      %d\n", res.Submitted)
	fmt.Printf("accepted / declined     %d / %d\n", res.Accepted, res.Declined)
	fmt.Printf("no option available     %d\n", res.NoOption)
	fmt.Printf("trips completed         %d\n", res.Stats.Completed)
	fmt.Printf("avg response time       %.2f ms\n", res.Stats.AvgResponseMs)
	fmt.Printf("p95 response time       %.2f ms\n", res.Stats.P95ResponseMs)
	fmt.Printf("avg sharing rate        %.1f %%\n", 100*res.Stats.SharingRate)
	fmt.Printf("avg options per request %.2f\n", res.AvgOptions)
	fmt.Printf("avg chosen price        %.2f\n", res.AvgPrice)
	fmt.Printf("avg chosen pickup       %.0f s\n", res.AvgPickupS)
	fmt.Printf("avg extra wait          %.1f s\n", res.Stats.AvgWaitSeconds)
	fmt.Printf("avg detour factor       %.3f\n", res.Stats.AvgDetourFactor)

	if res.Stats.Completed == 0 {
		log.Fatal("day produced no completed trips")
	}
}
