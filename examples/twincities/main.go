// Twincities drives two cities behind one PTRider front door: a large
// "metro" and a smaller "harbour" city, each with its own road network,
// fleet and engine, served concurrently by the multi-city router.
//
// The workload is deliberately skewed (metro takes 3x the traffic) and
// includes a slice of cross-city trips. With relay scheduling enabled
// (PR 4) those are no longer rejected: each is quoted as two
// coordinated legs over hand-off gateways at the water's edge, its
// joint price/time skyline composed from the per-city quotes, and both
// legs committed atomically. The run demonstrates the relay acceptance
// criteria: cross-city demand served end to end — quoted, committed,
// handed off and completed — next to isolated per-city panels and
// correctly aggregated totals.
//
//	go run ./examples/twincities
package main

import (
	"fmt"
	"log"

	"ptrider/internal/core"
	"ptrider/internal/multicity"
	"ptrider/internal/relay"
	"ptrider/internal/sim"
)

func main() {
	router, err := multicity.BuildFromSpecWithConfig("metro:20x20:60,harbour:12x12:25", core.Config{
		Capacity:    4,
		Algorithm:   core.AlgoDualSide,
		CommitSlack: 0.3,
	}, 42, multicity.RouterConfig{
		EnableRelay: true,
		Relay:       relay.Config{TransferBufferSeconds: 120},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range router.CityNames() {
		eng, err := router.Engine(name)
		if err != nil {
			log.Fatal(err)
		}
		region, _ := router.Region(name)
		fmt.Printf("%-8s %4d intersections, %2d taxis, region x ∈ [%.0f, %.0f] m\n",
			name, eng.Graph().NumVertices(), eng.NumVehicles(), region.Min.X, region.Max.X)
	}

	// One compressed hour, 3:1 skew toward the metro, 10% of trips
	// crossing the water — now served by relay instead of rejected.
	trips, err := sim.GenerateMultiWorkload(router, sim.MultiWorkloadConfig{
		NumTrips:   1200,
		DaySeconds: 3600,
		Weights:    map[string]float64{"metro": 3, "harbour": 1},
		CrossFrac:  0.10,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nreplaying %d trips across %d cities (relay on) …\n", len(trips), router.NumCities())
	res, err := sim.RunMulti(router, trips, sim.Config{
		TickSeconds: 2,
		Choice:      sim.UtilityChoice{},
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n-- aggregate panel --")
	fmt.Printf("trips submitted         %d\n", res.Submitted)
	fmt.Printf("cross-city relayed      %d (rejected: %d)\n", res.Relayed, res.CrossRejected)
	fmt.Printf("accepted / declined     %d / %d\n", res.Accepted, res.Declined)
	fmt.Printf("no option available     %d\n", res.NoOption)
	fmt.Printf("trips completed         %d\n", res.Stats.Total.Completed)
	fmt.Printf("avg response time       %.2f ms\n", res.Stats.Total.AvgResponseMs)
	fmt.Printf("avg sharing rate        %.1f %%\n", 100*res.Stats.Total.SharingRate)
	fmt.Printf("active taxis            %d\n", res.Stats.Total.ActiveVehicles)

	rs := res.Stats.Relay
	fmt.Println("\n-- relay panel --")
	fmt.Printf("trips quoted            %d (%d per-city leg quotes)\n", rs.Quoted, rs.LegQuotes)
	fmt.Printf("committed / aborted     %d / %d\n", rs.Committed, rs.Aborted)
	fmt.Printf("completed / failed      %d / %d (still active: %d)\n", rs.Completed, rs.Failed, rs.Active)

	fmt.Println("\n-- per-city panels --")
	for _, name := range router.CityNames() {
		st := res.Stats.Cities[name]
		pc := res.PerCity[name]
		fmt.Printf("%-8s submitted %4d · relayed %3d · accepted %4d · completed %4d · avg resp %.2f ms · sharing %.1f %% · taxis %d\n",
			name, pc.Submitted, pc.Relayed, pc.Accepted, st.Completed, st.AvgResponseMs, 100*st.SharingRate, st.ActiveVehicles)
	}

	// The acceptance checks: both cities served traffic, the totals are
	// the sums of the isolated per-city panels, cross-city demand was
	// relayed rather than rejected, and at least one relayed trip made
	// it all the way through the hand-off to completion.
	metro, harbour := res.Stats.Cities["metro"], res.Stats.Cities["harbour"]
	switch {
	case metro.Requests == 0 || harbour.Requests == 0:
		log.Fatal("a city was left idle")
	case res.Stats.Total.Requests != metro.Requests+harbour.Requests:
		log.Fatal("total requests are not the sum of the cities")
	case res.Stats.Total.Completed != metro.Completed+harbour.Completed:
		log.Fatal("total completions are not the sum of the cities")
	case res.CrossRejected != 0:
		log.Fatal("cross-city trips were rejected despite relay")
	case res.Relayed == 0:
		log.Fatal("no cross-city trips were exercised")
	case rs.Committed == 0:
		log.Fatal("no relay trip was committed")
	case rs.Completed == 0:
		log.Fatal("no relay trip completed its hand-off")
	case metro.Requests <= harbour.Requests:
		log.Fatal("skew did not reach the metro")
	}
	fmt.Println("\ntwin cities served concurrently; cross-city demand relayed across the water, end to end.")
}
