// Twincities drives two cities behind one PTRider front door: a large
// "metro" and a smaller "harbour" city, each with its own road network,
// fleet and engine, served concurrently by the multi-city router.
//
// Since PR 5 the whole scenario runs on the supported public surface:
// ptrider.NewMulti builds the system, RequestAt/Choose/Tick are the
// same verbs a single-city caller uses, Request.Relay carries the
// two-leg itinerary of a cross-city trip, and CityStats/RelayStats
// expose the per-city and relay panels — no internal package needed.
//
// The workload is deliberately skewed (metro takes 3x the traffic) and
// includes a slice of cross-city trips. With relay scheduling enabled
// each is quoted as two coordinated legs over hand-off gateways at the
// water's edge, its joint price/time skyline composed from the per-city
// quotes, and both legs committed atomically. The run demonstrates the
// acceptance criteria: cross-city demand served end to end — quoted,
// committed, handed off and completed — next to isolated per-city
// panels and correctly aggregated totals.
//
//	go run ./examples/twincities
package main

import (
	"fmt"
	"log"

	"ptrider"
)

func main() {
	sys, err := ptrider.NewMulti("metro:20x20:60,harbour:12x12:25", ptrider.MultiConfig{
		Config: ptrider.Config{
			Capacity:    4,
			Algorithm:   "dual-side",
			CommitSlack: 0.3,
			Seed:        42,
		},
		EnableRelay:           true,
		TransferBufferSeconds: 120,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range sys.Cities() {
		fmt.Printf("%-8s %4d intersections, %2d taxis\n", c.Name, c.Vertices, c.Vehicles)
	}

	// One compressed hour, 3:1 skew toward the metro, 10% of trips
	// crossing the water — served by relay instead of rejected.
	trips, err := sys.GenerateMultiWorkload(ptrider.MultiWorkloadConfig{
		NumTrips:   1200,
		DaySeconds: 3600,
		Weights:    map[string]float64{"metro": 3, "harbour": 1},
		CrossFrac:  0.10,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nreplaying %d trips across %d cities (relay on) …\n", len(trips), len(sys.Cities()))
	res, err := sys.RunMultiWorkload(trips, ptrider.SimOptions{
		TickSeconds: 2,
		Choice:      "utility",
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n-- aggregate panel --")
	fmt.Printf("trips submitted         %d\n", res.Submitted)
	fmt.Printf("cross-city relayed      %d (rejected: %d)\n", res.Relayed, res.CrossRejected)
	fmt.Printf("accepted / declined     %d / %d\n", res.Accepted, res.Declined)
	fmt.Printf("no option available     %d\n", res.NoOption)
	fmt.Printf("trips completed         %d\n", res.Stats.Completed)
	fmt.Printf("avg response time       %.2f ms\n", res.Stats.AvgResponseMs)
	fmt.Printf("avg sharing rate        %.1f %%\n", 100*res.Stats.SharingRate)
	fmt.Printf("active taxis            %d\n", res.Stats.ActiveVehicles)

	rs := res.Relay
	fmt.Println("\n-- relay panel --")
	fmt.Printf("trips quoted            %d (%d per-city leg quotes)\n", rs.Quoted, rs.LegQuotes)
	fmt.Printf("committed / aborted     %d / %d\n", rs.Committed, rs.Aborted)
	fmt.Printf("completed / failed      %d / %d (still active: %d)\n", rs.Completed, rs.Failed, rs.Active)

	fmt.Println("\n-- per-city panels --")
	for _, c := range sys.Cities() {
		st := res.CityStats[c.Name]
		pc := res.PerCity[c.Name]
		fmt.Printf("%-8s submitted %4d · relayed %3d · accepted %4d · completed %4d · avg resp %.2f ms · sharing %.1f %% · taxis %d\n",
			c.Name, pc.Submitted, pc.Relayed, pc.Accepted, st.Completed, st.AvgResponseMs, 100*st.SharingRate, st.ActiveVehicles)
	}

	// The acceptance checks: both cities served traffic, the totals are
	// the sums of the isolated per-city panels, cross-city demand was
	// relayed rather than rejected, and at least one relayed trip made
	// it all the way through the hand-off to completion.
	metro, harbour := res.CityStats["metro"], res.CityStats["harbour"]
	switch {
	case metro.Requests == 0 || harbour.Requests == 0:
		log.Fatal("a city was left idle")
	case res.Stats.Requests != metro.Requests+harbour.Requests:
		log.Fatal("total requests are not the sum of the cities")
	case res.Stats.Completed != metro.Completed+harbour.Completed:
		log.Fatal("total completions are not the sum of the cities")
	case res.CrossRejected != 0:
		log.Fatal("cross-city trips were rejected despite relay")
	case res.Relayed == 0:
		log.Fatal("no cross-city trips were exercised")
	case rs.Committed == 0:
		log.Fatal("no relay trip was committed")
	case rs.Completed == 0:
		log.Fatal("no relay trip completed its hand-off")
	case metro.Requests <= harbour.Requests:
		log.Fatal("skew did not reach the metro")
	}
	fmt.Println("\ntwin cities served concurrently over the public surface; cross-city demand relayed across the water, end to end.")
}
