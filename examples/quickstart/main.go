// Quickstart: generate a synthetic city, start PTRider with a fleet of
// taxis, submit one ridesharing request, inspect the price-and-time
// option skyline, choose, and ride to completion.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ptrider"
)

func main() {
	// A 20x20-intersection city with the default hotspots and arterials.
	city, err := ptrider.GenerateCity(ptrider.CityConfig{Width: 20, Height: 20, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d intersections, %d road segments\n", city.NumVertices(), city.NumRoads())

	// 50 taxis, demo defaults: capacity 4, 48 km/h, w = 300 s, σ = 0.4.
	sys, err := ptrider.New(city, ptrider.Config{NumTaxis: 50, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Put some background riders into taxis first: with every taxi
	// idle, the skyline collapses to the single nearest empty taxi
	// (all idle offers are dominated by it); a working fleet offers
	// genuine time-vs-price trade-offs.
	background, err := ptrider.GenerateWorkload(city, ptrider.WorkloadConfig{
		NumTrips: 40, DaySeconds: 1, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range background {
		r, err := sys.Request(tr.S, tr.D, tr.Riders)
		if err != nil {
			log.Fatal(err)
		}
		if len(r.Options) > 0 {
			if err := sys.Choose(r.ID, 0); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Two riders travelling between corners of the city.
	from, to := ptrider.VertexID(21), ptrider.VertexID(378)
	req, err := sys.Request(from, to, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrequest %d: %d -> %d, 2 riders — %d non-dominated options:\n",
		req.ID, from, to, len(req.Options))
	for _, o := range req.Options {
		fmt.Printf("  option %d: taxi %-4d pickup in %5.0f s  price %6.2f\n",
			o.Index, o.Vehicle, o.PickupSeconds, o.Price)
	}

	// Take the cheapest option (the last one: options are sorted by
	// pick-up time, and the skyline makes price fall as time grows).
	chosen := req.Options[len(req.Options)-1]
	if err := sys.Choose(req.ID, chosen.Index); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchose option %d (taxi %d)\n", chosen.Index, chosen.Vehicle)

	// Let simulated time run until the trip completes.
	for i := 0; i < 3600; i++ {
		events, err := sys.Tick(1)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range events {
			if e.Request == req.ID {
				fmt.Printf("t=%4.0fs: %s by taxi %d\n", sys.Stats().ClockSeconds, e.Kind, e.Vehicle)
			}
		}
		if status, _ := sys.RequestStatus(req.ID); status == "completed" {
			break
		}
	}

	st := sys.Stats()
	fmt.Printf("\nstats: %d request(s), %.2f options on average, avg response %.2f ms\n",
		st.Requests, st.AvgOptions, st.AvgResponseMs)
}
