package ptrider_test

import (
	"net/http/httptest"
	"testing"

	"ptrider"
)

// newMultiSystem builds a relay-enabled two-city system over the public
// surface.
func newMultiSystem(t *testing.T) *ptrider.System {
	t.Helper()
	sys, err := ptrider.NewMulti("east:10x10:10,west:8x8:8", ptrider.MultiConfig{
		Config:                ptrider.Config{Capacity: 4, Seed: 5},
		EnableRelay:           true,
		TransferBufferSeconds: 60,
	})
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	return sys
}

func TestNewMultiCitiesAndVerbs(t *testing.T) {
	sys := newMultiSystem(t)
	cities := sys.Cities()
	if len(cities) != 2 || cities[0].Name != "east" || cities[1].Name != "west" {
		t.Fatalf("cities = %+v", cities)
	}
	if sys.NumVehicles() != 18 {
		t.Fatalf("vehicles = %d, want 18", sys.NumVehicles())
	}

	// Same-city request through the same verbs a single-city caller
	// uses, addressed by city.
	req, err := sys.RequestIn("east", 3, 40, 1)
	if err != nil {
		t.Fatalf("RequestIn: %v", err)
	}
	if req.City != "east" || req.Relay != nil {
		t.Fatalf("east request = city %q relay %v", req.City, req.Relay)
	}
	if len(req.Options) > 0 {
		if err := sys.Choose(req.ID, 0); err != nil {
			t.Fatalf("Choose: %v", err)
		}
		if st, _ := sys.RequestStatus(req.ID); st != "assigned" {
			t.Fatalf("status = %q", st)
		}
	} else if err := sys.Decline(req.ID); err != nil {
		t.Fatalf("Decline: %v", err)
	}

	// The aggregate and per-city panels line up.
	if sys.Stats().Requests == 0 {
		t.Fatal("no requests counted")
	}
	cs := sys.CityStats()
	if cs["east"].Requests == 0 || cs["west"].Requests != 0 {
		t.Fatalf("per-city requests = %d/%d", cs["east"].Requests, cs["west"].Requests)
	}

	// Ticks advance every city.
	if _, err := sys.Tick(3); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	cs = sys.CityStats()
	if cs["east"].ClockSeconds != 3 || cs["west"].ClockSeconds != 3 {
		t.Fatalf("city clocks = %v/%v", cs["east"].ClockSeconds, cs["west"].ClockSeconds)
	}
}

// TestNewMultiRelayItinerary drives a cross-city trip end to end over
// the public surface: RequestAt quotes the two-leg itinerary, Choose
// commits both legs, RelayItinerary reports the lifecycle.
func TestNewMultiRelayItinerary(t *testing.T) {
	sys := newMultiSystem(t)
	east, west := sys.Cities()[0], sys.Cities()[1]
	ecx, ecy := (east.MinX+east.MaxX)/2, (east.MinY+east.MaxY)/2
	wcx, wcy := (west.MinX+west.MaxX)/2, (west.MinY+west.MaxY)/2

	// Scan coordinate pairs until a relay quote carries options: the
	// origin walks the east region, the destination the west one, so
	// every attempt crosses cities.
	var req ptrider.Request
	found := false
	for attempt := int64(0); attempt < 50 && !found; attempt++ {
		r, err := sys.RequestAt(
			ecx+50*float64(attempt%10), ecy+40*float64(attempt%7),
			wcx-60*float64(attempt%5), wcy+30*float64(attempt%3), 1)
		if err != nil {
			t.Fatalf("RequestAt: %v", err)
		}
		if r.Relay == nil {
			t.Fatalf("cross request has no relay itinerary: %+v", r)
		}
		if len(r.Options) > 0 {
			req, found = r, true
		} else if err := sys.Decline(r.ID); err != nil {
			t.Fatalf("Decline empty relay quote: %v", err)
		}
	}
	if !found {
		t.Skip("no relay quote produced options on this layout")
	}
	if req.ID >= 0 {
		t.Fatalf("relay request id %d not negative", req.ID)
	}
	if req.Relay.Origin != "east" || req.Relay.Dest != "west" || req.Relay.State != "quoted" {
		t.Fatalf("relay itinerary = %+v", req.Relay)
	}
	for i, o := range req.Relay.Options {
		if o.Fare != o.Leg1.Price+o.Leg2.Price {
			t.Fatalf("option %d fare %v != leg sum", i, o.Fare)
		}
		if req.Options[i].Price != o.Fare {
			t.Fatalf("option %d public price %v != fare %v", i, req.Options[i].Price, o.Fare)
		}
	}

	if err := sys.Choose(req.ID, 0); err != nil {
		t.Fatalf("Choose relay: %v", err)
	}
	it, err := sys.RelayItinerary(req.ID)
	if err != nil {
		t.Fatalf("RelayItinerary: %v", err)
	}
	if it.State != "leg1-committed" || it.Chosen != 0 {
		t.Fatalf("committed itinerary = %+v", it)
	}
	if rs, ok := sys.RelayStats(); !ok || rs.Committed != 1 {
		t.Fatalf("relay stats = %+v ok=%v", rs, ok)
	}
}

// TestMultiHTTPHandlerServesV1 pins that a multi-city System's
// HTTPHandler speaks the same /v1 surface as a single-city one.
func TestMultiHTTPHandlerServesV1(t *testing.T) {
	sys := newMultiSystem(t)
	ts := httptest.NewServer(sys.HTTPHandler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/cities")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("v1 cities status %d", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("v1 stats status %d", resp.StatusCode)
	}
}

// TestSingleCityGuards pins the multi-only/single-only seams.
func TestSingleCityGuards(t *testing.T) {
	sys := newMultiSystem(t)
	if _, err := sys.RunWorkload(nil, ptrider.SimOptions{}); err == nil {
		t.Fatal("RunWorkload on a multi-city system should fail")
	}

	net, err := ptrider.GenerateCity(ptrider.CityConfig{Width: 8, Height: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	single, err := ptrider.New(net, ptrider.Config{NumTaxis: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.GenerateMultiWorkload(ptrider.MultiWorkloadConfig{NumTrips: 10}); err == nil {
		t.Fatal("GenerateMultiWorkload on a single-city system should fail")
	}
	if _, err := single.RunMultiWorkload(nil, ptrider.SimOptions{}); err == nil {
		t.Fatal("RunMultiWorkload on a single-city system should fail")
	}
	// A single-city system reports its one implicit city.
	if cities := single.Cities(); len(cities) != 1 || cities[0].Vehicles != 3 {
		t.Fatalf("single cities = %+v", cities)
	}
}
