package ptrider_test

import (
	"bytes"
	"testing"

	"ptrider"
)

func TestNetworkRoundTrip(t *testing.T) {
	net := testCity(t)
	var buf bytes.Buffer
	if err := ptrider.WriteNetwork(&buf, net); err != nil {
		t.Fatalf("WriteNetwork: %v", err)
	}
	net2, err := ptrider.ReadNetwork(&buf)
	if err != nil {
		t.Fatalf("ReadNetwork: %v", err)
	}
	if net2.NumVertices() != net.NumVertices() || net2.NumRoads() != net.NumRoads() {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			net2.NumVertices(), net2.NumRoads(), net.NumVertices(), net.NumRoads())
	}
	// A system built on the reloaded network behaves identically for a
	// deterministic request.
	sysA, err := ptrider.New(net, ptrider.Config{NumTaxis: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := ptrider.New(net2, ptrider.Config{NumTaxis: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := sysA.Request(3, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sysB.Request(3, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Options) != len(rb.Options) {
		t.Fatalf("option counts differ: %d vs %d", len(ra.Options), len(rb.Options))
	}
	for i := range ra.Options {
		if ra.Options[i].Price != rb.Options[i].Price ||
			ra.Options[i].PickupSeconds != rb.Options[i].PickupSeconds {
			t.Fatalf("option %d differs: %+v vs %+v", i, ra.Options[i], rb.Options[i])
		}
	}
}

func TestReadNetworkRejectsDisconnected(t *testing.T) {
	input := "ptrider-network 1\nv 0 0\nv 1 0\nv 2 0\ne 0 1 1\ne 1 0 1\n"
	if _, err := ptrider.ReadNetwork(bytes.NewReader([]byte(input))); err == nil {
		t.Fatal("disconnected network accepted")
	}
}

func TestRequestWithConstraints(t *testing.T) {
	sys, err := ptrider.New(testCity(t), ptrider.Config{NumTaxis: 8, Sigma: 0.5, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// σ = 0 rider: options exist (empty vehicles serve with no detour).
	req, err := sys.RequestWithConstraints(4, 90, 1, 120, 0)
	if err != nil {
		t.Fatalf("RequestWithConstraints: %v", err)
	}
	if len(req.Options) == 0 {
		t.Fatal("zero-detour request got no options from an idle fleet")
	}
	if err := sys.Choose(req.ID, 0); err != nil {
		t.Fatalf("Choose: %v", err)
	}
	for status := ""; status != "completed"; {
		if _, err := sys.Tick(5); err != nil {
			t.Fatal(err)
		}
		status, _ = sys.RequestStatus(req.ID)
	}
	if f := sys.Stats().AvgDetourFactor; f > 1+1e-9 {
		t.Fatalf("zero-detour rider detoured: factor %v", f)
	}
}

func TestLandmarksConfig(t *testing.T) {
	sys, err := ptrider.New(testCity(t), ptrider.Config{NumTaxis: 8, NumLandmarks: 4, Seed: 11})
	if err != nil {
		t.Fatalf("New with landmarks: %v", err)
	}
	req, err := sys.Request(4, 90, 1)
	if err != nil || len(req.Options) == 0 {
		t.Fatalf("landmark-enabled request: %v (%d options)", err, len(req.Options))
	}
}
