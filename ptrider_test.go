package ptrider_test

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"ptrider"
)

func testCity(t *testing.T) *ptrider.Network {
	t.Helper()
	net, err := ptrider.GenerateCity(ptrider.CityConfig{Width: 12, Height: 12, Seed: 1})
	if err != nil {
		t.Fatalf("GenerateCity: %v", err)
	}
	return net
}

func TestNewNetworkValidation(t *testing.T) {
	pts := []ptrider.Point{{0, 0}, {100, 0}, {200, 0}}
	if _, err := ptrider.NewNetwork(pts, []ptrider.Edge{{U: 0, V: 1, Weight: 100}}); err == nil {
		t.Error("disconnected network accepted")
	}
	if _, err := ptrider.NewNetwork(pts, []ptrider.Edge{{U: 0, V: 9, Weight: 1}}); err == nil {
		t.Error("edge to unknown vertex accepted")
	}
	net, err := ptrider.NewNetwork(pts, []ptrider.Edge{
		{U: 0, V: 1, Weight: 100}, {U: 1, V: 2, Weight: 100},
	})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if net.NumVertices() != 3 || net.NumRoads() != 2 {
		t.Fatalf("network shape: %d vertices %d roads", net.NumVertices(), net.NumRoads())
	}
	if p := net.VertexPoint(1); p.X != 100 || p.Y != 0 {
		t.Fatalf("VertexPoint = %+v", p)
	}
}

func TestSystemRequestChooseTick(t *testing.T) {
	sys, err := ptrider.New(testCity(t), ptrider.Config{NumTaxis: 15, Seed: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if sys.NumVehicles() != 15 {
		t.Fatalf("NumVehicles = %d", sys.NumVehicles())
	}
	req, err := sys.Request(5, 100, 2)
	if err != nil {
		t.Fatalf("Request: %v", err)
	}
	if len(req.Options) == 0 {
		t.Fatal("no options")
	}
	for i, o := range req.Options {
		if o.Index != i {
			t.Fatalf("option %d has Index %d", i, o.Index)
		}
		if o.PickupSeconds < 0 || o.Price <= 0 {
			t.Fatalf("implausible option %+v", o)
		}
		if i > 0 && o.PickupSeconds < req.Options[i-1].PickupSeconds {
			t.Fatal("options not time-sorted")
		}
	}
	if err := sys.Choose(req.ID, 0); err != nil {
		t.Fatalf("Choose: %v", err)
	}
	status, err := sys.RequestStatus(req.ID)
	if err != nil || status != "assigned" {
		t.Fatalf("status = %q, %v", status, err)
	}

	completed := false
	for i := 0; i < 2000 && !completed; i++ {
		events, err := sys.Tick(1)
		if err != nil {
			t.Fatalf("Tick: %v", err)
		}
		for _, e := range events {
			if e.Kind == "dropoff" && e.Request == req.ID {
				completed = true
			}
		}
	}
	if !completed {
		t.Fatal("request never completed")
	}
	st := sys.Stats()
	if st.Completed != 1 || st.Requests != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVehicleSchedulesAndAlgorithmSwitch(t *testing.T) {
	sys, err := ptrider.New(testCity(t), ptrider.Config{NumTaxis: 5, Algorithm: "single-side", Seed: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	req, err := sys.Request(3, 97, 1)
	if err != nil || len(req.Options) == 0 {
		t.Fatalf("Request: %v (%d options)", err, len(req.Options))
	}
	if err := sys.Choose(req.ID, 0); err != nil {
		t.Fatalf("Choose: %v", err)
	}
	veh := req.Options[0].Vehicle
	loc, schedules, err := sys.VehicleSchedules(veh)
	if err != nil {
		t.Fatalf("VehicleSchedules: %v", err)
	}
	if len(schedules) == 0 {
		t.Fatal("no schedules after assignment")
	}
	_ = loc
	if err := sys.SetAlgorithm("dual-side"); err != nil {
		t.Fatalf("SetAlgorithm: %v", err)
	}
	if err := sys.SetAlgorithm("bogus"); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	if _, err := ptrider.New(testCity(t), ptrider.Config{Algorithm: "bogus"}); err == nil {
		t.Fatal("bogus algorithm accepted at construction")
	}
}

func TestGenerateWorkloadAndRun(t *testing.T) {
	net := testCity(t)
	trips, err := ptrider.GenerateWorkload(net, ptrider.WorkloadConfig{
		NumTrips: 50, DaySeconds: 400, Seed: 4,
	})
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	if len(trips) != 50 {
		t.Fatalf("trips = %d", len(trips))
	}
	sys, err := ptrider.New(net, ptrider.Config{NumTaxis: 12, Seed: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := sys.RunWorkload(trips, ptrider.SimOptions{TickSeconds: 2, Choice: "cheapest", Seed: 4})
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	if res.Submitted != 50 || res.Accepted == 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Stats.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if _, err := sys.RunWorkload(trips, ptrider.SimOptions{Choice: "bogus"}); err == nil {
		t.Fatal("bogus choice model accepted")
	}
}

func TestHTTPHandler(t *testing.T) {
	sys, err := ptrider.New(testCity(t), ptrider.Config{NumTaxis: 5, Seed: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(sys.HTTPHandler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if _, ok := st["ActiveVehicles"]; !ok {
		t.Fatalf("stats = %v", st)
	}
}
