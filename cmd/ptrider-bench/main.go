// Command ptrider-bench regenerates every experiment in EXPERIMENTS.md
// (the demo paper's quantitative artefacts, E2–E8). Each experiment
// prints one table; absolute numbers depend on the host, but the
// orderings and shapes are the reproduction targets.
//
// Usage:
//
//	ptrider-bench -exp all            # every experiment
//	ptrider-bench -exp algos          # E3: naive vs single vs dual
//	ptrider-bench -exp dualside       # E4: the dual-side scenario
//	ptrider-bench -exp stats          # E2: day statistics panel
//	ptrider-bench -exp sweep          # E5: parameter sensitivity
//	ptrider-bench -exp index          # E6: grid index build/bounds/updates
//	ptrider-bench -exp options        # E7: options-per-request distribution
//	ptrider-bench -exp ablate         # E8: optimisation ablations
//
// -scale small|medium|large trades run time for fidelity to the demo's
// 17,000-taxi scale.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
)

type scale struct {
	name       string
	city       int // city side (intersections)
	fleets     []int
	dayTaxis   int
	dayTrips   int
	daySeconds float64
	probes     int
}

var scales = map[string]scale{
	"small":  {name: "small", city: 24, fleets: []int{50, 100, 200}, dayTaxis: 100, dayTrips: 2000, daySeconds: 7200, probes: 60},
	"medium": {name: "medium", city: 40, fleets: []int{100, 250, 500, 1000}, dayTaxis: 400, dayTrips: 10000, daySeconds: 14400, probes: 120},
	"large":  {name: "large", city: 64, fleets: []int{500, 1000, 2000, 4000}, dayTaxis: 2000, dayTrips: 60000, daySeconds: 43200, probes: 200},
}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: all|stats|algos|dualside|sweep|index|options|ablate")
		scaleFl   = flag.String("scale", "small", "scale: small|medium|large")
		seed      = flag.Int64("seed", 1, "random seed")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address during the experiments (empty = off)")
	)
	flag.IntVar(&tickWorkersFl, "tick-workers", 0, "parallel tick shard width for every experiment engine (0 = one per CPU, 1 = serial)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "ptrider-bench: pprof: %v\n", err)
			}
		}()
	}

	sc, ok := scales[*scaleFl]
	if !ok {
		fmt.Fprintf(os.Stderr, "ptrider-bench: unknown scale %q\n", *scaleFl)
		os.Exit(2)
	}

	exps := map[string]func(scale, int64) error{
		"stats":    expStats,
		"algos":    expAlgos,
		"dualside": expDualSide,
		"sweep":    expSweep,
		"index":    expIndex,
		"options":  expOptions,
		"ablate":   expAblate,
	}
	order := []string{"stats", "algos", "dualside", "sweep", "index", "options", "ablate"}

	run := func(name string) error {
		fmt.Printf("\n======== %s (scale=%s, seed=%d) ========\n", strings.ToUpper(name), sc.name, *seed)
		return exps[name](sc, *seed)
	}

	if *exp == "all" {
		for _, name := range order {
			if err := run(name); err != nil {
				fmt.Fprintf(os.Stderr, "ptrider-bench: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	if _, ok := exps[*exp]; !ok {
		fmt.Fprintf(os.Stderr, "ptrider-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err := run(*exp); err != nil {
		fmt.Fprintf(os.Stderr, "ptrider-bench: %s: %v\n", *exp, err)
		os.Exit(1)
	}
}
