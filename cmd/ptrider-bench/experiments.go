package main

import (
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/gridindex"
	"ptrider/internal/roadnet"
	"ptrider/internal/sim"
	"ptrider/internal/stats"
	"ptrider/internal/trace"
)

func table() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
}

func buildCity(side int, seed int64) (*roadnet.Graph, error) {
	return gen.GenerateNetwork(gen.CityConfig{Width: side, Height: side, RemoveFrac: 0.15, Seed: seed})
}

// tickWorkersFl is the -tick-workers flag: the Tick shard width every
// experiment engine is built with (0 = one per CPU, 1 = serial).
var tickWorkersFl int

func buildEngine(g *roadnet.Graph, taxis int, seed int64, mut func(*core.Config)) (*core.Engine, error) {
	cfg := core.Config{
		GridCols: 16, GridRows: 16,
		Capacity: 4, MaxWaitSeconds: 300, Sigma: 0.4,
		Algorithm: core.AlgoDualSide, Seed: seed,
		TickWorkers: tickWorkersFl,
	}
	if mut != nil {
		mut(&cfg)
	}
	e, err := core.NewEngine(g, cfg)
	if err != nil {
		return nil, err
	}
	e.AddVehiclesUniform(taxis)
	return e, nil
}

// warm loads the engine with accepted requests so vehicles carry
// schedules, then lets them drive for a while.
func warm(e *core.Engine, g *roadnet.Graph, seconds float64, seed int64) error {
	trips, err := gen.GenerateTrips(g, gen.TripConfig{
		NumTrips:   int(seconds / 4), // one trip every ~4 simulated seconds
		DaySeconds: seconds,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	s, err := sim.New(e, trips, sim.Config{TickSeconds: 2, Seed: seed, Choice: sim.UtilityChoice{}, EndSeconds: e.Clock() + seconds})
	if err != nil {
		return err
	}
	_, err = s.Run()
	return err
}

// probePairs draws matching probes (s, d) uniformly.
func probePairs(g *roadnet.Graph, n int, seed int64) [][2]roadnet.VertexID {
	rng := rand.New(rand.NewSource(seed))
	out := make([][2]roadnet.VertexID, 0, n)
	for len(out) < n {
		s := roadnet.VertexID(rng.Intn(g.NumVertices()))
		d := roadnet.VertexID(rng.Intn(g.NumVertices()))
		if s != d {
			out = append(out, [2]roadnet.VertexID{s, d})
		}
	}
	return out
}

// expStats — E2: the Fig. 4(c) statistics panel over a scaled day.
func expStats(sc scale, seed int64) error {
	g, err := buildCity(sc.city, seed)
	if err != nil {
		return err
	}
	e, err := buildEngine(g, sc.dayTaxis, seed, nil)
	if err != nil {
		return err
	}
	trips, err := gen.GenerateTrips(g, gen.TripConfig{NumTrips: sc.dayTrips, DaySeconds: sc.daySeconds, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("day: %d taxis, %d trips over %.0fs on %d vertices\n",
		sc.dayTaxis, sc.dayTrips, sc.daySeconds, g.NumVertices())
	summary := trace.Summarise(trips, sc.daySeconds)
	fmt.Printf("workload by riders: %v\n", summary.ByRiders)

	s, err := sim.New(e, trips, sim.Config{TickSeconds: 2, Seed: seed})
	if err != nil {
		return err
	}
	res, err := s.Run()
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintf(w, "metric\tvalue\t\n")
	fmt.Fprintf(w, "avg response time (ms)\t%.3f\t\n", res.Engine.AvgResponseMs)
	fmt.Fprintf(w, "p95 response time (ms)\t%.3f\t\n", res.Engine.P95ResponseMs)
	fmt.Fprintf(w, "avg sharing rate (%%)\t%.1f\t\n", 100*res.Engine.SharingRate)
	fmt.Fprintf(w, "avg options/request\t%.2f\t\n", res.Engine.AvgOptions)
	fmt.Fprintf(w, "accepted/submitted\t%d/%d\t\n", res.Accepted, res.Submitted)
	fmt.Fprintf(w, "completed\t%d\t\n", res.Engine.Completed)
	fmt.Fprintf(w, "avg extra wait (s)\t%.1f\t\n", res.Engine.AvgWaitSeconds)
	fmt.Fprintf(w, "avg detour factor\t%.3f\t\n", res.Engine.AvgDetourFactor)
	return w.Flush()
}

// expAlgos — E3: per-request latency and verifications, naive vs
// single-side vs dual-side, across fleet sizes.
func expAlgos(sc scale, seed int64) error {
	g, err := buildCity(sc.city, seed)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintf(w, "taxis\talgo\tavg ms\tverified\tpruned\tcells\tdist calls\toptions\t\n")
	for _, fleetSize := range sc.fleets {
		e, err := buildEngine(g, fleetSize, seed, nil)
		if err != nil {
			return err
		}
		if err := warm(e, g, 900, seed); err != nil {
			return err
		}
		probes := probePairs(g, sc.probes, seed+7)
		for _, algo := range []core.Algorithm{core.AlgoNaive, core.AlgoSingleSide, core.AlgoDualSide} {
			e.ResetDistCache()
			var agg core.MatchStats
			var opts stats.Online
			start := time.Now()
			for _, p := range probes {
				_, ms, err := e.MatchOnce(algo, p[0], p[1], 1)
				if err != nil {
					return err
				}
				agg.Verified += ms.Verified
				agg.PrunedVehicles += ms.PrunedVehicles
				agg.CellsScanned += ms.CellsScanned
				agg.DistCalls += ms.DistCalls
				opts.Observe(float64(ms.Options))
			}
			elapsed := time.Since(start)
			n := float64(len(probes))
			fmt.Fprintf(w, "%d\t%s\t%.3f\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\t\n",
				fleetSize, algo,
				float64(elapsed.Milliseconds())/n,
				float64(agg.Verified)/n,
				float64(agg.PrunedVehicles)/n,
				float64(agg.CellsScanned)/n,
				float64(agg.DistCalls)/n,
				opts.Mean())
		}
	}
	return w.Flush()
}

// expDualSide — E4: the paper's dual-side scenario — schedules near the
// start location but far from the destination. Vehicles are loaded with
// trips inside the north-west quadrant; probes start there but end in
// the south-east corner.
func expDualSide(sc scale, seed int64) error {
	g, err := buildCity(sc.city, seed)
	if err != nil {
		return err
	}
	e, err := buildEngine(g, sc.dayTaxis, seed, nil)
	if err != nil {
		return err
	}

	// Quadrant helpers over the vertex grid (ids are row-major).
	side := sc.city
	inNW := func(v roadnet.VertexID) bool {
		x, y := int(v)%side, int(v)/side
		return x < side/2 && y >= side/2
	}
	rng := rand.New(rand.NewSource(seed + 13))
	randIn := func(pred func(roadnet.VertexID) bool) roadnet.VertexID {
		for {
			v := roadnet.VertexID(rng.Intn(g.NumVertices()))
			if pred(v) {
				return v
			}
		}
	}

	// Load vehicles with NW-internal trips so their schedules stay NW.
	loaded := 0
	for i := 0; i < sc.dayTaxis*2 && loaded < sc.dayTaxis/2; i++ {
		s := randIn(inNW)
		d := randIn(inNW)
		if s == d {
			continue
		}
		rec, err := e.Submit(s, d, 1)
		if err != nil {
			continue
		}
		if len(rec.Options) > 0 {
			if err := e.Choose(rec.ID, 0); err == nil {
				loaded++
			}
		} else {
			e.Decline(rec.ID)
		}
	}
	fmt.Printf("loaded %d NW-bound schedules onto %d taxis\n", loaded, sc.dayTaxis)

	seCorner := roadnet.VertexID(side/8*side + (side - 1 - side/8)) // south-east area
	probes := make([][2]roadnet.VertexID, 0, sc.probes)
	for len(probes) < sc.probes {
		s := randIn(inNW)
		if s != seCorner {
			probes = append(probes, [2]roadnet.VertexID{s, seCorner})
		}
	}

	w := table()
	fmt.Fprintf(w, "algo\tavg ms\tverified\tpruned\tdist calls\toptions\t\n")
	for _, algo := range []core.Algorithm{core.AlgoNaive, core.AlgoSingleSide, core.AlgoDualSide} {
		e.ResetDistCache()
		var agg core.MatchStats
		var opts stats.Online
		start := time.Now()
		for _, p := range probes {
			_, ms, err := e.MatchOnce(algo, p[0], p[1], 1)
			if err != nil {
				return err
			}
			agg.Verified += ms.Verified
			agg.PrunedVehicles += ms.PrunedVehicles
			agg.DistCalls += ms.DistCalls
			opts.Observe(float64(ms.Options))
		}
		elapsed := time.Since(start)
		n := float64(len(probes))
		fmt.Fprintf(w, "%s\t%.3f\t%.1f\t%.1f\t%.1f\t%.2f\t\n",
			algo, float64(elapsed.Milliseconds())/n,
			float64(agg.Verified)/n, float64(agg.PrunedVehicles)/n,
			float64(agg.DistCalls)/n, opts.Mean())
	}
	return w.Flush()
}

// expSweep — E5: sensitivity of the statistics panel to the website
// interface's global parameters.
func expSweep(sc scale, seed int64) error {
	g, err := buildCity(sc.city, seed)
	if err != nil {
		return err
	}
	trips, err := gen.GenerateTrips(g, gen.TripConfig{
		NumTrips: sc.dayTrips / 4, DaySeconds: sc.daySeconds / 4, Seed: seed,
	})
	if err != nil {
		return err
	}

	type variant struct {
		label string
		taxis int
		mut   func(*core.Config)
	}
	base := sc.dayTaxis
	variants := []variant{
		{"baseline", base, nil},
		{"taxis/2", base / 2, nil},
		{"taxis*2", base * 2, nil},
		{"capacity=2", base, func(c *core.Config) { c.Capacity = 2 }},
		{"capacity=6", base, func(c *core.Config) { c.Capacity = 6 }},
		{"w=120s", base, func(c *core.Config) { c.MaxWaitSeconds = 120 }},
		{"w=600s", base, func(c *core.Config) { c.MaxWaitSeconds = 600 }},
		{"sigma=0.2", base, func(c *core.Config) { c.Sigma = 0.2 }},
		{"sigma=0.8", base, func(c *core.Config) { c.Sigma = 0.8 }},
	}

	w := table()
	fmt.Fprintf(w, "variant\tresp ms\toptions\tsharing %%\tserved %%\tdetour\t\n")
	for _, v := range variants {
		e, err := buildEngine(g, v.taxis, seed, v.mut)
		if err != nil {
			return err
		}
		s, err := sim.New(e, trips, sim.Config{TickSeconds: 2, Seed: seed})
		if err != nil {
			return err
		}
		res, err := s.Run()
		if err != nil {
			return err
		}
		served := 0.0
		if res.Submitted > 0 {
			served = 100 * float64(res.Accepted) / float64(res.Submitted)
		}
		fmt.Fprintf(w, "%s\t%.3f\t%.2f\t%.1f\t%.1f\t%.3f\t\n",
			v.label, res.Engine.AvgResponseMs, res.Engine.AvgOptions,
			100*res.Engine.SharingRate, served, res.Engine.AvgDetourFactor)
	}
	return w.Flush()
}

// expIndex — E6: grid index build cost, bound tightness and dynamic
// list update throughput across grid resolutions.
func expIndex(sc scale, seed int64) error {
	g, err := buildCity(sc.city, seed)
	if err != nil {
		return err
	}
	s := roadnet.NewSearcher(g)
	rng := rand.New(rand.NewSource(seed + 3))
	pairs := probePairs(g, 300, seed+4)

	w := table()
	fmt.Fprintf(w, "grid\tbuild ms\tavg LB/dist\tavg UB/dist\tupdates/ms\t\n")
	for _, res := range []int{4, 8, 16, 32} {
		start := time.Now()
		grid, err := gridindex.Build(g, gridindex.Config{Cols: res, Rows: res})
		if err != nil {
			return err
		}
		buildMs := float64(time.Since(start).Microseconds()) / 1000

		var lbSum, ubSum float64
		var nb int
		for _, p := range pairs {
			d := s.Dist(p[0], p[1])
			if d == 0 {
				continue
			}
			lbSum += grid.LB(p[0], p[1]) / d
			if ub := grid.UB(p[0], p[1]); ub < 1e17 {
				ubSum += ub / d
				nb++
			}
		}
		ubAvg := 0.0
		if nb > 0 {
			ubAvg = ubSum / float64(nb)
		}

		lists := gridindex.NewVehicleLists(grid.NumCells())
		const ops = 200000
		start = time.Now()
		for i := 0; i < ops; i++ {
			id := gridindex.VehicleID(i % 4096)
			lists.PlaceEmpty(id, gridindex.CellID(rng.Intn(grid.NumCells())))
		}
		updMs := float64(time.Since(start).Microseconds()) / 1000

		fmt.Fprintf(w, "%dx%d\t%.1f\t%.3f\t%.3f\t%.0f\t\n",
			res, res, buildMs, lbSum/float64(len(pairs)), ubAvg, ops/updMs)
	}
	return w.Flush()
}

// expOptions — E7: distribution of options per request over a loaded
// system ("PTRider can return various options for every ridesharing
// request in real time").
func expOptions(sc scale, seed int64) error {
	g, err := buildCity(sc.city, seed)
	if err != nil {
		return err
	}
	e, err := buildEngine(g, sc.dayTaxis, seed, nil)
	if err != nil {
		return err
	}
	if err := warm(e, g, 900, seed); err != nil {
		return err
	}
	hist, err := stats.NewHistogram(0, 10, 10)
	if err != nil {
		return err
	}
	var online stats.Online
	for _, p := range probePairs(g, sc.probes*4, seed+9) {
		opts, _, err := e.MatchOnce(core.AlgoDualSide, p[0], p[1], 1)
		if err != nil {
			return err
		}
		hist.Observe(float64(len(opts)))
		online.Observe(float64(len(opts)))
	}
	w := table()
	fmt.Fprintf(w, "options\trequests\t\n")
	for i := 0; i < hist.NumBins(); i++ {
		lo, _ := hist.BinBounds(i)
		fmt.Fprintf(w, "%.0f\t%d\t\n", lo, hist.Bin(i))
	}
	fmt.Fprintf(w, "10+\t%d\t\n", hist.Over())
	fmt.Fprintf(w, "mean\t%.2f\t\n", online.Mean())
	fmt.Fprintf(w, "max\t%.0f\t\n", online.Max())
	return w.Flush()
}

// expAblate — E8: each optimisation disabled in turn, dual-side
// matcher, same probes.
func expAblate(sc scale, seed int64) error {
	g, err := buildCity(sc.city, seed)
	if err != nil {
		return err
	}
	type variant struct {
		label string
		mut   func(*core.Config)
	}
	variants := []variant{
		{"full", nil},
		{"no lower bounds", func(c *core.Config) { c.DisableLB = true }},
		{"no empty-vehicle lemma", func(c *core.Config) { c.DisableEmptyLemma = true }},
		{"grid 4x4", func(c *core.Config) { c.GridCols, c.GridRows = 4, 4 }},
		{"grid 32x32", func(c *core.Config) { c.GridCols, c.GridRows = 32, 32 }},
		{"landmarks 8", func(c *core.Config) { c.NumLandmarks = 8 }},
	}
	probes := probePairs(g, sc.probes, seed+21)
	w := table()
	fmt.Fprintf(w, "variant\tavg ms\tverified\tdist calls\t\n")
	for _, v := range variants {
		e, err := buildEngine(g, sc.dayTaxis, seed, v.mut)
		if err != nil {
			return err
		}
		if err := warm(e, g, 600, seed); err != nil {
			return err
		}
		e.ResetDistCache()
		var agg core.MatchStats
		start := time.Now()
		for _, p := range probes {
			_, ms, err := e.MatchOnce(core.AlgoDualSide, p[0], p[1], 1)
			if err != nil {
				return err
			}
			agg.Verified += ms.Verified
			agg.DistCalls += ms.DistCalls
		}
		elapsed := time.Since(start)
		n := float64(len(probes))
		fmt.Fprintf(w, "%s\t%.3f\t%.1f\t%.1f\t\n",
			v.label, float64(elapsed.Milliseconds())/n,
			float64(agg.Verified)/n, float64(agg.DistCalls)/n)
	}
	return w.Flush()
}
