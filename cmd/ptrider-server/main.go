// Command ptrider-server runs the PTRider demo service: the smartphone
// interface (request → options → choice) and the website interface
// (statistics, schedules, parameters) as a JSON API over HTTP, backed
// by a synthetic city with roaming taxis.
//
// With -realtime, simulated time advances with wall-clock time in the
// background, like the live demo; otherwise advance it manually via
// POST /api/tick.
//
// Usage:
//
//	ptrider-server -addr :8080 -width 40 -height 40 -taxis 500 -realtime
//
// Endpoints (see internal/server):
//
//	POST /api/request {"s":12,"d":17,"riders":2}
//	POST /api/choose  {"id":1,"option":0}
//	GET  /api/stats
//	GET  /api/taxi?id=3
//	GET  /api/params · POST /api/params {"algorithm":"single-side"}
//	POST /api/tick    {"seconds":5}
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"ptrider"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		width    = flag.Int("width", 40, "city width (intersections)")
		height   = flag.Int("height", 40, "city height (intersections)")
		taxis    = flag.Int("taxis", 500, "number of taxis")
		algo     = flag.String("algo", "dual-side", "matching algorithm")
		seed     = flag.Int64("seed", 1, "random seed")
		realtime = flag.Bool("realtime", false, "advance simulated time with wall-clock time")
	)
	flag.Parse()

	net, err := ptrider.GenerateCity(ptrider.CityConfig{Width: *width, Height: *height, Seed: *seed})
	if err != nil {
		log.Fatalf("ptrider-server: %v", err)
	}
	sys, err := ptrider.New(net, ptrider.Config{NumTaxis: *taxis, Algorithm: *algo, Seed: *seed})
	if err != nil {
		log.Fatalf("ptrider-server: %v", err)
	}

	if *realtime {
		go func() {
			ticker := time.NewTicker(time.Second)
			defer ticker.Stop()
			for range ticker.C {
				if _, err := sys.Tick(1); err != nil {
					log.Printf("ptrider-server: tick: %v", err)
					return
				}
			}
		}()
	}

	fmt.Printf("PTRider serving %d taxis on a %dx%d city at %s (realtime=%v)\n",
		*taxis, *width, *height, *addr, *realtime)
	log.Fatal(http.ListenAndServe(*addr, sys.HTTPHandler()))
}
