// Command ptrider-server runs the PTRider service: the versioned /v1
// JSON API (requests, choices, vehicles, cities, relay itineraries,
// ticks, stats, an SSE event stream) plus the demo-era /api aliases,
// backed by a synthetic city with roaming taxis.
//
// With -cities, the server runs the multi-city router instead: one
// independent engine per city, requests assigned to cities by origin
// coordinate — and, with -relay, cross-city trips served as two-leg
// relay itineraries. Single- and multi-city modes serve the identical
// HTTP surface: both backends implement the same core Service
// interface behind one handler set (see internal/server).
//
// With -shards, the server runs neither backend locally: it becomes a
// cluster gateway over remote city shard processes (cmd/ptrider-shard),
// one per address, routing requests to shards by city and serving
// cross-city trips through the gateway-side relay scheduler — the same
// /v1 surface a third time, over sockets (see internal/cluster).
// Addresses are host:port, optionally name-prefixed ("east=host:port")
// to pick the served city names.
//
// With -realtime, simulated time advances with wall-clock time in the
// background, like the live demo, feeding GET /v1/events; otherwise
// advance it manually via POST /v1/ticks.
//
// With -wal-dir, every state-mutating operation is journaled to a
// write-ahead log under that directory before it is acknowledged, and
// a restart with the same flags recovers the ledger — requests,
// assignments, vehicle schedules, simulated clock — instead of
// re-seeding a fresh fleet. -wal-mode picks sync (fsync before ack)
// or async (group-committed in the background, a crash may lose the
// tail); -snapshot-every bounds recovery time by compacting the
// journal every N records. On SIGINT/SIGTERM the server drains
// in-flight HTTP requests, flushes the journal and writes a final
// snapshot before exiting, so the next start recovers instantly.
//
// Observability: GET /metrics serves the Prometheus text exposition —
// HTTP route latencies, submit-stage timings (quote, register, WAL
// wait, probe/commit), tick shard wall times, WAL append/fsync
// latencies, surge gauges — on by default, off with -metrics=false.
// -slow-request-ms N logs one structured line (correlation id +
// per-stage breakdown) for requests slower than N ms, and -pprof-addr
// serves net/http/pprof on a separate listener.
//
// Usage:
//
//	ptrider-server -addr :8080 -width 40 -height 40 -taxis 500 -realtime
//	ptrider-server -addr :8080 -cities "east:40x40:500,west:28x28:200" -relay
//	ptrider-server -addr :8080 -shards "east=localhost:9101,west=localhost:9102"
//	ptrider-server -addr :8080 -wal-dir /var/lib/ptrider/wal -wal-mode sync
//
// Endpoints (see internal/server for the full reference):
//
//	POST /v1/requests                {"s":12,"d":17,"riders":2} · {"city":"east",...}
//	                                 · {"ox":..,"oy":..,"dx":..,"dy":..} · {"requests":[...]}
//	GET  /v1/requests                ledger listing (?city=&status=&limit=&offset=)
//	GET  /v1/requests/{id} · POST /v1/requests/{id}/choice · POST /v1/requests/{id}/decline
//	GET  /v1/vehicles[/{id}] · GET /v1/cities · GET /v1/relay/{id}
//	POST /v1/ticks {"seconds":5} · GET /v1/stats · GET /v1/events (SSE)
//	GET/POST /v1/params · GET /v1/map
//	GET  /v1/healthz · GET /v1/readyz · GET /metrics
//	(legacy aliases: /api/request, /api/choose, /api/decline, /api/stats,
//	 /api/taxi, /api/params, /api/tick, /api/vehicles, /api/map,
//	 /api/cities, /api/relay)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ptrider/internal/cluster"
	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/multicity"
	"ptrider/internal/server"
	"ptrider/internal/telemetry"
	"ptrider/internal/wal"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		width      = flag.Int("width", 40, "city width (intersections)")
		height     = flag.Int("height", 40, "city height (intersections)")
		taxis      = flag.Int("taxis", 500, "number of taxis")
		algo       = flag.String("algo", "dual-side", "matching algorithm")
		seed       = flag.Int64("seed", 1, "random seed")
		realtime   = flag.Bool("realtime", false, "advance simulated time with wall-clock time")
		cities     = flag.String("cities", "", `multi-city spec "name:WxH:taxis,..." (overrides -width/-height/-taxis)`)
		shards     = flag.String("shards", "", `cluster gateway mode: comma-separated shard addresses "[name=]host:port,..." (overrides -cities)`)
		relayOn    = flag.Bool("relay", false, "serve cross-city trips as two-leg relay trips (with -cities)")
		tickW      = flag.Int("tick-workers", 0, "parallel tick shard width, divided across cities (0 = one per CPU, 1 = serial)")
		walDir     = flag.String("wal-dir", "", "write-ahead log directory (empty = durability off; multi-city shards get per-city subdirectories)")
		walMode    = flag.String("wal-mode", "sync", `journal mode with -wal-dir: "sync" (fsync before ack) or "async" (background group commit)`)
		snapEvery  = flag.Int("snapshot-every", 0, "journal records between snapshots (0 = engine default)")
		surgeOn    = flag.Bool("surge", false, "enable per-cell surge pricing (see /v1/surge)")
		surgeEpoch = flag.Float64("surge-epoch", 0, "surge multiplier re-evaluation period in simulated seconds (0 = 60)")
		metricsOn  = flag.Bool("metrics", true, "expose GET /metrics and record engine/HTTP telemetry")
		slowReqMS  = flag.Float64("slow-request-ms", 0, "log a structured line for HTTP requests slower than this many milliseconds (0 = off)")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = off)")
	)
	flag.Parse()

	mode := wal.ModeOff
	if *walDir != "" {
		m, err := wal.ParseMode(*walMode)
		if err != nil || m == wal.ModeOff {
			log.Fatalf("ptrider-server: -wal-mode must be sync or async with -wal-dir")
		}
		mode = m
	}

	// One registry covers the whole backend; per-city engines get child
	// registries whose families merge city-labeled at scrape time.
	var reg *telemetry.Registry
	if *metricsOn {
		reg = telemetry.NewRegistry()
	}
	svc, banner, err := buildService(buildConfig{
		cities: *cities, shards: *shards, width: *width, height: *height, taxis: *taxis,
		algoName: *algo, seed: *seed, relayOn: *relayOn, tickWorkers: *tickW,
		durability: mode, walDir: *walDir, snapshotEvery: *snapEvery,
		surge: *surgeOn, surgeEpoch: *surgeEpoch, telemetry: reg,
	})
	if err != nil {
		log.Fatalf("ptrider-server: %v", err)
	}
	srv := server.NewServiceWithOptions(svc, server.Options{
		DisableMetrics: !*metricsOn,
		SlowRequest:    time.Duration(*slowReqMS * float64(time.Millisecond)),
	})

	if *pprofAddr != "" {
		// pprof rides the default mux on its own listener, so profiling
		// endpoints never share a port with the public API.
		go func() {
			log.Printf("ptrider-server: pprof at %s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("ptrider-server: pprof: %v", err)
			}
		}()
	}

	// The realtime driver stops when the serve context is cancelled so
	// a tick never races the final snapshot.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *realtime {
		go func() {
			ticker := time.NewTicker(time.Second)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					// Ticking through the server feeds /v1/events too.
					if err := srv.Tick(1); err != nil {
						log.Printf("ptrider-server: tick: %v", err)
						return
					}
				}
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	fmt.Printf("PTRider serving %s at %s (realtime=%v, durability=%s)\n", banner, *addr, *realtime, mode)

	select {
	case err := <-errCh:
		log.Fatalf("ptrider-server: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately

	// Drain in-flight requests, then flush the journal and write the
	// final snapshot so the next start recovers without replay.
	log.Printf("ptrider-server: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("ptrider-server: http shutdown: %v", err)
	}
	if closer, ok := svc.(interface{ Close() error }); ok {
		if err := closer.Close(); err != nil && !errors.Is(err, wal.ErrCrashed) {
			log.Printf("ptrider-server: close: %v", err)
		}
	}
	log.Printf("ptrider-server: bye")
}

// buildConfig carries the service-construction flags.
type buildConfig struct {
	cities        string
	shards        string
	width, height int
	taxis         int
	algoName      string
	seed          int64
	relayOn       bool
	tickWorkers   int
	durability    wal.Mode
	walDir        string
	snapshotEvery int
	surge         bool
	surgeEpoch    float64
	telemetry     *telemetry.Registry
}

// buildService constructs the backend: a single-city engine, or a
// multi-city router from the compact spec. Both implement the same
// core.Service, so the caller serves them identically. When a WAL
// directory holds a previous run's journal, the recovered fleet is
// kept and the initial seeding is skipped.
func buildService(bc buildConfig) (core.Service, string, error) {
	algo, err := core.ParseAlgorithm(bc.algoName)
	if err != nil {
		return nil, "", err
	}
	if bc.shards != "" {
		addrs := strings.Split(bc.shards, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		gw, err := cluster.NewGateway(addrs, cluster.GatewayConfig{
			Registry: bc.telemetry,
		})
		if err != nil {
			return nil, "", err
		}
		return gw, fmt.Sprintf("%d remote city shards (gateway mode)", len(addrs)), nil
	}
	if bc.cities != "" {
		router, err := multicity.BuildFromSpecWithConfig(bc.cities,
			core.Config{
				Algorithm: algo, TickWorkers: bc.tickWorkers,
				SurgeEnabled: bc.surge, SurgeEpochSeconds: bc.surgeEpoch,
			}, bc.seed,
			multicity.RouterConfig{
				EnableRelay: bc.relayOn,
				Durability:  bc.durability, WALDir: bc.walDir, SnapshotEvery: bc.snapshotEvery,
				Telemetry: bc.telemetry,
			})
		if err != nil {
			return nil, "", err
		}
		total := 0
		for _, c := range router.Cities() {
			total += c.Vehicles
		}
		return router, fmt.Sprintf("%d cities (%d taxis total, relay=%v)",
			router.NumCities(), total, router.RelayEnabled()), nil
	}
	g, err := gen.GenerateNetwork(gen.CityConfig{Width: bc.width, Height: bc.height, Seed: bc.seed})
	if err != nil {
		return nil, "", err
	}
	eng, err := core.NewEngine(g, core.Config{
		Algorithm: algo, Seed: bc.seed, TickWorkers: bc.tickWorkers,
		Durability: bc.durability, WALDir: bc.walDir, SnapshotEvery: bc.snapshotEvery,
		SurgeEnabled: bc.surge, SurgeEpochSeconds: bc.surgeEpoch,
		Telemetry: bc.telemetry,
	})
	if err != nil {
		return nil, "", err
	}
	if eng.Recovered() {
		return eng, fmt.Sprintf("%d taxis on a %dx%d city (recovered from %s)",
			eng.NumVehicles(), bc.width, bc.height, bc.walDir), nil
	}
	eng.AddVehiclesUniform(bc.taxis)
	return eng, fmt.Sprintf("%d taxis on a %dx%d city", bc.taxis, bc.width, bc.height), nil
}
