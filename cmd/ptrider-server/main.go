// Command ptrider-server runs the PTRider demo service: the smartphone
// interface (request → options → choice) and the website interface
// (statistics, schedules, parameters) as a JSON API over HTTP, backed
// by a synthetic city with roaming taxis.
//
// With -cities, the server runs the multi-city router instead: one
// independent engine per city, requests assigned to cities by origin
// coordinate, and a city dimension in every view (see
// internal/server's multi-city endpoint reference).
//
// With -realtime, simulated time advances with wall-clock time in the
// background, like the live demo; otherwise advance it manually via
// POST /api/tick.
//
// Usage:
//
//	ptrider-server -addr :8080 -width 40 -height 40 -taxis 500 -realtime
//	ptrider-server -addr :8080 -cities "east:40x40:500,west:28x28:200" -relay
//
// Endpoints (see internal/server):
//
//	POST /api/request {"s":12,"d":17,"riders":2}          (single city)
//	POST /api/request {"city":"east","s":12,"d":17,...}   (multi-city)
//	POST /api/request {"ox":..,"oy":..,"dx":..,"dy":..}   (multi-city, by coordinate)
//	POST /api/choose  {"id":1,"option":0}
//	GET  /api/stats · GET /api/cities
//	GET  /api/taxi?id=3           (multi-city: &city=east)
//	GET  /api/params · POST /api/params
//	POST /api/tick    {"seconds":5}
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"ptrider"
	"ptrider/internal/core"
	"ptrider/internal/multicity"
	"ptrider/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		width    = flag.Int("width", 40, "city width (intersections)")
		height   = flag.Int("height", 40, "city height (intersections)")
		taxis    = flag.Int("taxis", 500, "number of taxis")
		algo     = flag.String("algo", "dual-side", "matching algorithm")
		seed     = flag.Int64("seed", 1, "random seed")
		realtime = flag.Bool("realtime", false, "advance simulated time with wall-clock time")
		cities   = flag.String("cities", "", `multi-city spec "name:WxH:taxis,..." (overrides -width/-height/-taxis)`)
		relayOn  = flag.Bool("relay", false, "serve cross-city trips as two-leg relay trips (with -cities)")
	)
	flag.Parse()

	if *cities != "" {
		if err := runMulti(*addr, *cities, *algo, *seed, *realtime, *relayOn); err != nil {
			log.Fatalf("ptrider-server: %v", err)
		}
		return
	}

	net, err := ptrider.GenerateCity(ptrider.CityConfig{Width: *width, Height: *height, Seed: *seed})
	if err != nil {
		log.Fatalf("ptrider-server: %v", err)
	}
	sys, err := ptrider.New(net, ptrider.Config{NumTaxis: *taxis, Algorithm: *algo, Seed: *seed})
	if err != nil {
		log.Fatalf("ptrider-server: %v", err)
	}

	if *realtime {
		go func() {
			ticker := time.NewTicker(time.Second)
			defer ticker.Stop()
			for range ticker.C {
				if _, err := sys.Tick(1); err != nil {
					log.Printf("ptrider-server: tick: %v", err)
					return
				}
			}
		}()
	}

	fmt.Printf("PTRider serving %d taxis on a %dx%d city at %s (realtime=%v)\n",
		*taxis, *width, *height, *addr, *realtime)
	log.Fatal(http.ListenAndServe(*addr, sys.HTTPHandler()))
}

// runMulti serves a multi-city router built from the compact spec,
// optionally with relay scheduling for cross-city trips.
func runMulti(addr, spec, algoName string, seed int64, realtime, relayOn bool) error {
	algo, err := core.ParseAlgorithm(algoName)
	if err != nil {
		return err
	}
	router, err := multicity.BuildFromSpecWithConfig(spec, core.Config{Algorithm: algo}, seed,
		multicity.RouterConfig{EnableRelay: relayOn})
	if err != nil {
		return err
	}

	if realtime {
		go func() {
			ticker := time.NewTicker(time.Second)
			defer ticker.Stop()
			for range ticker.C {
				if _, err := router.Tick(1); err != nil {
					log.Printf("ptrider-server: tick: %v", err)
					return
				}
			}
		}()
	}

	total := 0
	for _, name := range router.CityNames() {
		eng, err := router.Engine(name)
		if err != nil {
			return err
		}
		total += eng.NumVehicles()
	}
	fmt.Printf("PTRider serving %d cities (%d taxis total) at %s (realtime=%v, relay=%v)\n",
		router.NumCities(), total, addr, realtime, router.RelayEnabled())
	return http.ListenAndServe(addr, server.NewMulti(router).Handler())
}
