// Command ptrider-server runs the PTRider service: the versioned /v1
// JSON API (requests, choices, vehicles, cities, relay itineraries,
// ticks, stats, an SSE event stream) plus the demo-era /api aliases,
// backed by a synthetic city with roaming taxis.
//
// With -cities, the server runs the multi-city router instead: one
// independent engine per city, requests assigned to cities by origin
// coordinate — and, with -relay, cross-city trips served as two-leg
// relay itineraries. Single- and multi-city modes serve the identical
// HTTP surface: both backends implement the same core Service
// interface behind one handler set (see internal/server).
//
// With -realtime, simulated time advances with wall-clock time in the
// background, like the live demo, feeding GET /v1/events; otherwise
// advance it manually via POST /v1/ticks.
//
// Usage:
//
//	ptrider-server -addr :8080 -width 40 -height 40 -taxis 500 -realtime
//	ptrider-server -addr :8080 -cities "east:40x40:500,west:28x28:200" -relay
//
// Endpoints (see internal/server for the full reference):
//
//	POST /v1/requests                {"s":12,"d":17,"riders":2} · {"city":"east",...}
//	                                 · {"ox":..,"oy":..,"dx":..,"dy":..} · {"requests":[...]}
//	GET  /v1/requests/{id} · POST /v1/requests/{id}/choice · POST /v1/requests/{id}/decline
//	GET  /v1/vehicles[/{id}] · GET /v1/cities · GET /v1/relay/{id}
//	POST /v1/ticks {"seconds":5} · GET /v1/stats · GET /v1/events (SSE)
//	GET/POST /v1/params · GET /v1/map · GET /healthz
//	(legacy aliases: /api/request, /api/choose, /api/decline, /api/stats,
//	 /api/taxi, /api/params, /api/tick, /api/vehicles, /api/map,
//	 /api/cities, /api/relay)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/multicity"
	"ptrider/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		width    = flag.Int("width", 40, "city width (intersections)")
		height   = flag.Int("height", 40, "city height (intersections)")
		taxis    = flag.Int("taxis", 500, "number of taxis")
		algo     = flag.String("algo", "dual-side", "matching algorithm")
		seed     = flag.Int64("seed", 1, "random seed")
		realtime = flag.Bool("realtime", false, "advance simulated time with wall-clock time")
		cities   = flag.String("cities", "", `multi-city spec "name:WxH:taxis,..." (overrides -width/-height/-taxis)`)
		relayOn  = flag.Bool("relay", false, "serve cross-city trips as two-leg relay trips (with -cities)")
		tickW    = flag.Int("tick-workers", 0, "parallel tick shard width, divided across cities (0 = one per CPU, 1 = serial)")
	)
	flag.Parse()

	svc, banner, err := buildService(*cities, *width, *height, *taxis, *algo, *seed, *relayOn, *tickW)
	if err != nil {
		log.Fatalf("ptrider-server: %v", err)
	}
	srv := server.NewService(svc)

	if *realtime {
		go func() {
			ticker := time.NewTicker(time.Second)
			defer ticker.Stop()
			for range ticker.C {
				// Ticking through the server feeds /v1/events too.
				if err := srv.Tick(1); err != nil {
					log.Printf("ptrider-server: tick: %v", err)
					return
				}
			}
		}()
	}

	fmt.Printf("PTRider serving %s at %s (realtime=%v)\n", banner, *addr, *realtime)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

// buildService constructs the backend: a single-city engine, or a
// multi-city router from the compact spec. Both implement the same
// core.Service, so the caller serves them identically.
func buildService(cities string, width, height, taxis int, algoName string, seed int64, relayOn bool, tickWorkers int) (core.Service, string, error) {
	algo, err := core.ParseAlgorithm(algoName)
	if err != nil {
		return nil, "", err
	}
	if cities != "" {
		router, err := multicity.BuildFromSpecWithConfig(cities, core.Config{Algorithm: algo, TickWorkers: tickWorkers}, seed,
			multicity.RouterConfig{EnableRelay: relayOn})
		if err != nil {
			return nil, "", err
		}
		total := 0
		for _, c := range router.Cities() {
			total += c.Vehicles
		}
		return router, fmt.Sprintf("%d cities (%d taxis total, relay=%v)",
			router.NumCities(), total, router.RelayEnabled()), nil
	}
	g, err := gen.GenerateNetwork(gen.CityConfig{Width: width, Height: height, Seed: seed})
	if err != nil {
		return nil, "", err
	}
	eng, err := core.NewEngine(g, core.Config{Algorithm: algo, Seed: seed, TickWorkers: tickWorkers})
	if err != nil {
		return nil, "", err
	}
	eng.AddVehiclesUniform(taxis)
	return eng, fmt.Sprintf("%d taxis on a %dx%d city", taxis, width, height), nil
}
