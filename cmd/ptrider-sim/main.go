// Command ptrider-sim replays a synthetic city day against PTRider and
// prints the demo's statistics panel (paper §4): average response time,
// sharing rate, options per request, waiting and detour quality.
//
// The defaults are a laptop-scale rendition of the demo's setup
// (17,000 taxis / 432,327 trips over one day); raise -taxis/-trips/-day
// to approach the full scale.
//
// Usage:
//
//	ptrider-sim -width 40 -height 40 -taxis 500 -trips 20000 -day 86400 \
//	            -algo dual-side -choice utility -tick 1 -seed 1
//
// With -cities the replay runs against the multi-city router instead:
// per-city engines behind one front door, load skewed by -skew, and a
// -cross fraction of trips relocated across city borders. With -relay
// those cross-city trips are served as two-leg relay trips (hand-off
// gateways, joint price/time skylines, two-phase commits); without it
// the router rejects them with its typed cross-city error:
//
//	ptrider-sim -cities "east:40x40:500,west:28x28:200" \
//	            -skew "east=3,west=1" -cross 0.1 -relay -trips 20000
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"ptrider"
	"ptrider/internal/core"
	"ptrider/internal/multicity"
	"ptrider/internal/relay"
	"ptrider/internal/sim"
	"ptrider/internal/trace"
)

func main() {
	var (
		width      = flag.Int("width", 40, "city width (intersections)")
		height     = flag.Int("height", 40, "city height (intersections)")
		taxis      = flag.Int("taxis", 500, "number of taxis")
		trips      = flag.Int("trips", 20000, "number of trips in the day")
		day        = flag.Float64("day", 86400, "day length in seconds")
		algo       = flag.String("algo", "dual-side", "matching algorithm: naive|single-side|dual-side")
		choice     = flag.String("choice", "utility", "rider choice model: earliest|cheapest|uniform|utility")
		tick       = flag.Float64("tick", 1, "simulation tick in seconds")
		seed       = flag.Int64("seed", 1, "random seed")
		cap        = flag.Int("capacity", 4, "taxi capacity")
		wait       = flag.Float64("wait", 300, "maximal waiting time w in seconds")
		sigma      = flag.Float64("sigma", 0.4, "service constraint sigma")
		fail       = flag.Float64("failures", 0, "vehicle failures injected per hour")
		saveCSV    = flag.String("save-trips", "", "write the generated workload to this CSV file")
		saveNet    = flag.String("save-network", "", "write the generated network to this file")
		loadNet    = flag.String("load-network", "", "load the road network from this file instead of generating")
		loadTrips  = flag.String("load-trips", "", "load the workload from this CSV file instead of generating")
		cities     = flag.String("cities", "", `multi-city spec "name:WxH:taxis,..." (switches to the multi-city replay)`)
		skew       = flag.String("skew", "", `per-city load weights "name=w,..." (default uniform)`)
		cross      = flag.Float64("cross", 0, "fraction of trips relocated across city borders")
		relayOn    = flag.Bool("relay", false, "serve cross-city trips as two-leg relay trips instead of rejecting them")
		transfer   = flag.Float64("transfer-buffer", 120, "relay hand-off margin in seconds (0 = none)")
		tickW      = flag.Int("tick-workers", 0, "parallel tick shard width, divided across cities (0 = one per CPU, 1 = serial)")
		surgeOn    = flag.Bool("surge", false, "enable per-cell surge pricing")
		surgeEpoch = flag.Float64("surge-epoch", 0, "surge re-evaluation period in simulated seconds (0 = 60)")
		peak       = flag.Bool("peak", false, "concentrate the generated workload into rush-hour peaks (single-city)")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this address during the replay (empty = off)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "ptrider-sim: pprof: %v\n", err)
			}
		}()
	}

	if *cities != "" {
		// The multi-city replay generates its own workload and has no
		// failure injection yet; refuse flags it would silently drop.
		switch {
		case *fail != 0:
			fmt.Fprintln(os.Stderr, "ptrider-sim: -failures is not supported with -cities")
			os.Exit(2)
		case *saveCSV != "" || *loadTrips != "":
			fmt.Fprintln(os.Stderr, "ptrider-sim: -save-trips/-load-trips are not supported with -cities (multi-city trips are coordinates, not vertex traces)")
			os.Exit(2)
		case *saveNet != "" || *loadNet != "":
			fmt.Fprintln(os.Stderr, "ptrider-sim: -save-network/-load-network are not supported with -cities (networks come from the city spec)")
			os.Exit(2)
		}
		if *peak {
			fmt.Fprintln(os.Stderr, "ptrider-sim: -peak is not supported with -cities (multi-city workloads use their own generator)")
			os.Exit(2)
		}
		if err := runMulti(*cities, *skew, *cross, *trips, *day, *algo, *choice, *tick, *seed, *cap, *wait, *sigma, *relayOn, *transfer, *tickW, *surgeOn, *surgeEpoch); err != nil {
			fmt.Fprintln(os.Stderr, "ptrider-sim:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*width, *height, *taxis, *trips, *day, *algo, *choice, *tick, *seed, *cap, *wait, *sigma, *fail, *saveCSV, *saveNet, *loadNet, *loadTrips, *tickW, *surgeOn, *surgeEpoch, *peak); err != nil {
		fmt.Fprintln(os.Stderr, "ptrider-sim:", err)
		os.Exit(1)
	}
}

// literalSeconds maps the flag's "0 means none" onto relay.Config's
// "0 means default, negative means none" encoding.
func literalSeconds(s float64) float64 {
	if s == 0 {
		return -1
	}
	return s
}

// parseWeights reads a "name=w,name=w" skew spec.
func parseWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad skew entry %q (want name=weight)", part)
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad skew weight %q: %v", kv[1], err)
		}
		out[strings.TrimSpace(kv[0])] = w
	}
	return out, nil
}

// runMulti replays a skewed multi-city day against the router — driven
// through the core Service interface, like every other transport — and
// prints per-city panels plus the aggregate (and the relay panel when
// relay scheduling is on).
func runMulti(citySpec, skewSpec string, crossFrac float64, trips int, day float64, algoName, choiceName string, tick float64, seed int64, capacity int, wait, sigma float64, relayOn bool, transferBuffer float64, tickWorkers int, surgeOn bool, surgeEpoch float64) error {
	algo, err := core.ParseAlgorithm(algoName)
	if err != nil {
		return err
	}
	weights, err := parseWeights(skewSpec)
	if err != nil {
		return err
	}
	choice, err := sim.ParseChoiceModel(choiceName)
	if err != nil {
		return err
	}

	fmt.Printf("building cities %q (relay=%v) …\n", citySpec, relayOn)
	router, err := multicity.BuildFromSpecWithConfig(citySpec, core.Config{
		Capacity:          capacity,
		MaxWaitSeconds:    wait,
		Sigma:             sigma,
		Algorithm:         algo,
		TickWorkers:       tickWorkers,
		SurgeEnabled:      surgeOn,
		SurgeEpochSeconds: surgeEpoch,
	}, seed, multicity.RouterConfig{
		EnableRelay: relayOn,
		Relay:       relay.Config{TransferBufferSeconds: literalSeconds(transferBuffer)},
	})
	if err != nil {
		return err
	}
	for _, name := range router.CityNames() {
		eng, err := router.Engine(name)
		if err != nil {
			return err
		}
		fmt.Printf("  %-10s %5d intersections, %4d taxis\n", name, eng.Graph().NumVertices(), eng.NumVehicles())
	}

	fmt.Printf("generating %d trips over %.0fs (cross-city fraction %.2f) …\n", trips, day, crossFrac)
	workload, err := sim.GenerateMultiWorkload(router, sim.MultiWorkloadConfig{
		NumTrips: trips, DaySeconds: day,
		Weights: weights, CrossFrac: crossFrac, Seed: seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("running day with algorithm=%s, choice=%s …\n", algoName, choiceName)
	res, err := sim.RunMulti(router, workload, sim.Config{
		TickSeconds: tick, Choice: choice, Seed: seed,
	})
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\n== PTRider multi-city panel ==")
	fmt.Fprintf(w, "simulated clock\t%.0f s\n", res.Stats.Total.Clock)
	fmt.Fprintf(w, "trips submitted\t%d\n", res.Submitted)
	if res.Stats.RelayEnabled {
		fmt.Fprintf(w, "cross-city relayed\t%d\n", res.Relayed)
	} else {
		fmt.Fprintf(w, "cross-city rejected\t%d\n", res.CrossRejected)
	}
	fmt.Fprintf(w, "accepted / declined / no option\t%d / %d / %d\n", res.Accepted, res.Declined, res.NoOption)
	fmt.Fprintf(w, "completed trips\t%d\n", res.Stats.Total.Completed)
	fmt.Fprintf(w, "average response time\t%.3f ms\n", res.Stats.Total.AvgResponseMs)
	fmt.Fprintf(w, "average sharing rate\t%.1f %%\n", 100*res.Stats.Total.SharingRate)
	fmt.Fprintf(w, "commit stale / re-probed / salvaged\t%d / %d / %d\n",
		res.Stats.Total.CommitStale, res.Stats.Total.Reprobes, res.Stats.Total.ReprobeCommits)
	fmt.Fprintf(w, "active taxis\t%d\n", res.Stats.Total.ActiveVehicles)
	ts := res.Stats.Total.Tick
	fmt.Fprintf(w, "tick workers (all cities)\t%d\n", ts.Workers)
	fmt.Fprintf(w, "tick wall avg / last\t%.3f / %.3f ms\n", ts.AvgWallMs, ts.LastWallMs)
	fmt.Fprintf(w, "events per tick / max shard skew\t%.2f / %.3f ms\n", ts.AvgEvents, ts.MaxShardSkewMs)
	if err := w.Flush(); err != nil {
		return err
	}
	if res.Stats.RelayEnabled {
		rs := res.Stats.Relay
		rw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(rw, "\n== relay panel ==")
		fmt.Fprintf(rw, "trips quoted / leg quotes\t%d / %d\n", rs.Quoted, rs.LegQuotes)
		fmt.Fprintf(rw, "committed / aborted / declined\t%d / %d / %d\n", rs.Committed, rs.Aborted, rs.Declined)
		fmt.Fprintf(rw, "completed / failed / still active\t%d / %d / %d\n", rs.Completed, rs.Failed, rs.Active)
		if err := rw.Flush(); err != nil {
			return err
		}
	}

	cw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(cw, "\ncity\tsubmitted\taccepted\tcompleted\tavg resp ms\tsharing %\ttaxis\t")
	for _, name := range router.CityNames() {
		st := res.Stats.Cities[name]
		pc := res.PerCity[name]
		fmt.Fprintf(cw, "%s\t%d\t%d\t%d\t%.3f\t%.1f\t%d\t\n",
			name, pc.Submitted, pc.Accepted, st.Completed, st.AvgResponseMs, 100*st.SharingRate, st.ActiveVehicles)
	}
	return cw.Flush()
}

func run(width, height, taxis, trips int, day float64, algo, choice string, tick float64, seed int64, capacity int, wait, sigma, fail float64, saveCSV, saveNet, loadNet, loadTrips string, tickWorkers int, surgeOn bool, surgeEpoch float64, peak bool) error {
	var net *ptrider.Network
	var err error
	if loadNet != "" {
		fmt.Printf("loading network from %s …\n", loadNet)
		f, err2 := os.Open(loadNet)
		if err2 != nil {
			return err2
		}
		net, err = ptrider.ReadNetwork(f)
		f.Close()
	} else {
		fmt.Printf("generating city %dx%d …\n", width, height)
		net, err = ptrider.GenerateCity(ptrider.CityConfig{Width: width, Height: height, Seed: seed})
	}
	if err != nil {
		return err
	}
	if saveNet != "" {
		f, err := os.Create(saveNet)
		if err != nil {
			return err
		}
		if err := ptrider.WriteNetwork(f, net); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  network saved to %s\n", saveNet)
	}
	fmt.Printf("  %d intersections, %d road segments\n", net.NumVertices(), net.NumRoads())

	var workload []ptrider.Trip
	if loadTrips != "" {
		fmt.Printf("loading workload from %s …\n", loadTrips)
		f, err := os.Open(loadTrips)
		if err != nil {
			return err
		}
		workload, err = trace.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		for _, tr := range workload {
			if err := tr.Validate(net.NumVertices()); err != nil {
				return err
			}
		}
		trace.SortByTime(workload)
	} else {
		fmt.Printf("generating %d trips over %.0fs …\n", trips, day)
		workload, err = ptrider.GenerateWorkload(net, ptrider.WorkloadConfig{
			NumTrips: trips, DaySeconds: day, PeakHours: peak, Seed: seed,
		})
		if err != nil {
			return err
		}
	}
	if saveCSV != "" {
		f, err := os.Create(saveCSV)
		if err != nil {
			return err
		}
		if err := trace.WriteCSV(f, workload); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  workload saved to %s\n", saveCSV)
	}

	sys, err := ptrider.New(net, ptrider.Config{
		NumTaxis:          taxis,
		Capacity:          capacity,
		MaxWaitSeconds:    wait,
		Sigma:             sigma,
		Algorithm:         algo,
		Seed:              seed,
		TickWorkers:       tickWorkers,
		SurgeEnabled:      surgeOn,
		SurgeEpochSeconds: surgeEpoch,
	})
	if err != nil {
		return err
	}

	fmt.Printf("running day with %d taxis, algorithm=%s, choice=%s …\n", taxis, algo, choice)
	res, err := sys.RunWorkload(workload, ptrider.SimOptions{
		TickSeconds:     tick,
		Choice:          choice,
		FailuresPerHour: fail,
		Seed:            seed,
	})
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\n== PTRider statistics panel ==")
	fmt.Fprintf(w, "simulated clock\t%.0f s\n", res.Stats.ClockSeconds)
	fmt.Fprintf(w, "requests submitted\t%d\n", res.Submitted)
	fmt.Fprintf(w, "accepted / declined / no option\t%d / %d / %d\n", res.Accepted, res.Declined, res.NoOption)
	fmt.Fprintf(w, "completed trips\t%d\n", res.Stats.Completed)
	fmt.Fprintf(w, "average response time\t%.3f ms\n", res.Stats.AvgResponseMs)
	fmt.Fprintf(w, "p95 response time\t%.3f ms\n", res.Stats.P95ResponseMs)
	fmt.Fprintf(w, "average sharing rate\t%.1f %%\n", 100*res.Stats.SharingRate)
	fmt.Fprintf(w, "average options per request\t%.2f\n", res.AvgOptions)
	fmt.Fprintf(w, "average chosen price\t%.2f\n", res.AvgPrice)
	fmt.Fprintf(w, "average chosen pickup\t%.0f s\n", res.AvgPickupS)
	fmt.Fprintf(w, "average extra wait\t%.1f s\n", res.Stats.AvgWaitSeconds)
	fmt.Fprintf(w, "average detour factor\t%.3f\n", res.Stats.AvgDetourFactor)
	fmt.Fprintf(w, "active taxis at end\t%d\n", res.Stats.ActiveVehicles)
	fmt.Fprintf(w, "tick workers\t%d\n", res.Stats.Tick.Workers)
	fmt.Fprintf(w, "tick wall avg / last\t%.3f / %.3f ms\n", res.Stats.Tick.AvgWallMs, res.Stats.Tick.LastWallMs)
	fmt.Fprintf(w, "events per tick / max shard skew\t%.2f / %.3f ms\n", res.Stats.Tick.AvgEvents, res.Stats.Tick.MaxShardSkewMs)
	if res.Stats.Surge.Enabled {
		sg := res.Stats.Surge
		fmt.Fprintf(w, "surge epoch / surged cells\t%d / %d of %d\n", sg.Epoch, sg.ActiveCells, sg.Cells)
		fmt.Fprintf(w, "surge max / avg multiplier\t%.2f / %.3f\n", sg.MaxMultiplier, sg.AvgMultiplier)
		fmt.Fprintf(w, "surged quotes\t%d\n", sg.SurgedQuotes)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if len(res.Hourly) > 1 {
		hw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(hw, "\nhour\tsubmitted\taccepted\tno option\tavg options\t")
		for _, h := range res.Hourly {
			fmt.Fprintf(hw, "%02d\t%d\t%d\t%d\t%.2f\t\n",
				h.Hour, h.Submitted, h.Accepted, h.NoOption, h.AvgOptions)
		}
		return hw.Flush()
	}
	return nil
}
