// Command ptrider-sim replays a synthetic city day against PTRider and
// prints the demo's statistics panel (paper §4): average response time,
// sharing rate, options per request, waiting and detour quality.
//
// The defaults are a laptop-scale rendition of the demo's setup
// (17,000 taxis / 432,327 trips over one day); raise -taxis/-trips/-day
// to approach the full scale.
//
// Usage:
//
//	ptrider-sim -width 40 -height 40 -taxis 500 -trips 20000 -day 86400 \
//	            -algo dual-side -choice utility -tick 1 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"ptrider"
	"ptrider/internal/trace"
)

func main() {
	var (
		width     = flag.Int("width", 40, "city width (intersections)")
		height    = flag.Int("height", 40, "city height (intersections)")
		taxis     = flag.Int("taxis", 500, "number of taxis")
		trips     = flag.Int("trips", 20000, "number of trips in the day")
		day       = flag.Float64("day", 86400, "day length in seconds")
		algo      = flag.String("algo", "dual-side", "matching algorithm: naive|single-side|dual-side")
		choice    = flag.String("choice", "utility", "rider choice model: earliest|cheapest|uniform|utility")
		tick      = flag.Float64("tick", 1, "simulation tick in seconds")
		seed      = flag.Int64("seed", 1, "random seed")
		cap       = flag.Int("capacity", 4, "taxi capacity")
		wait      = flag.Float64("wait", 300, "maximal waiting time w in seconds")
		sigma     = flag.Float64("sigma", 0.4, "service constraint sigma")
		fail      = flag.Float64("failures", 0, "vehicle failures injected per hour")
		saveCSV   = flag.String("save-trips", "", "write the generated workload to this CSV file")
		saveNet   = flag.String("save-network", "", "write the generated network to this file")
		loadNet   = flag.String("load-network", "", "load the road network from this file instead of generating")
		loadTrips = flag.String("load-trips", "", "load the workload from this CSV file instead of generating")
	)
	flag.Parse()

	if err := run(*width, *height, *taxis, *trips, *day, *algo, *choice, *tick, *seed, *cap, *wait, *sigma, *fail, *saveCSV, *saveNet, *loadNet, *loadTrips); err != nil {
		fmt.Fprintln(os.Stderr, "ptrider-sim:", err)
		os.Exit(1)
	}
}

func run(width, height, taxis, trips int, day float64, algo, choice string, tick float64, seed int64, capacity int, wait, sigma, fail float64, saveCSV, saveNet, loadNet, loadTrips string) error {
	var net *ptrider.Network
	var err error
	if loadNet != "" {
		fmt.Printf("loading network from %s …\n", loadNet)
		f, err2 := os.Open(loadNet)
		if err2 != nil {
			return err2
		}
		net, err = ptrider.ReadNetwork(f)
		f.Close()
	} else {
		fmt.Printf("generating city %dx%d …\n", width, height)
		net, err = ptrider.GenerateCity(ptrider.CityConfig{Width: width, Height: height, Seed: seed})
	}
	if err != nil {
		return err
	}
	if saveNet != "" {
		f, err := os.Create(saveNet)
		if err != nil {
			return err
		}
		if err := ptrider.WriteNetwork(f, net); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  network saved to %s\n", saveNet)
	}
	fmt.Printf("  %d intersections, %d road segments\n", net.NumVertices(), net.NumRoads())

	var workload []ptrider.Trip
	if loadTrips != "" {
		fmt.Printf("loading workload from %s …\n", loadTrips)
		f, err := os.Open(loadTrips)
		if err != nil {
			return err
		}
		workload, err = trace.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		for _, tr := range workload {
			if err := tr.Validate(net.NumVertices()); err != nil {
				return err
			}
		}
		trace.SortByTime(workload)
	} else {
		fmt.Printf("generating %d trips over %.0fs …\n", trips, day)
		workload, err = ptrider.GenerateWorkload(net, ptrider.WorkloadConfig{
			NumTrips: trips, DaySeconds: day, Seed: seed,
		})
		if err != nil {
			return err
		}
	}
	if saveCSV != "" {
		f, err := os.Create(saveCSV)
		if err != nil {
			return err
		}
		if err := trace.WriteCSV(f, workload); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  workload saved to %s\n", saveCSV)
	}

	sys, err := ptrider.New(net, ptrider.Config{
		NumTaxis:       taxis,
		Capacity:       capacity,
		MaxWaitSeconds: wait,
		Sigma:          sigma,
		Algorithm:      algo,
		Seed:           seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("running day with %d taxis, algorithm=%s, choice=%s …\n", taxis, algo, choice)
	res, err := sys.RunWorkload(workload, ptrider.SimOptions{
		TickSeconds:     tick,
		Choice:          choice,
		FailuresPerHour: fail,
		Seed:            seed,
	})
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\n== PTRider statistics panel ==")
	fmt.Fprintf(w, "simulated clock\t%.0f s\n", res.Stats.ClockSeconds)
	fmt.Fprintf(w, "requests submitted\t%d\n", res.Submitted)
	fmt.Fprintf(w, "accepted / declined / no option\t%d / %d / %d\n", res.Accepted, res.Declined, res.NoOption)
	fmt.Fprintf(w, "completed trips\t%d\n", res.Stats.Completed)
	fmt.Fprintf(w, "average response time\t%.3f ms\n", res.Stats.AvgResponseMs)
	fmt.Fprintf(w, "p95 response time\t%.3f ms\n", res.Stats.P95ResponseMs)
	fmt.Fprintf(w, "average sharing rate\t%.1f %%\n", 100*res.Stats.SharingRate)
	fmt.Fprintf(w, "average options per request\t%.2f\n", res.AvgOptions)
	fmt.Fprintf(w, "average chosen price\t%.2f\n", res.AvgPrice)
	fmt.Fprintf(w, "average chosen pickup\t%.0f s\n", res.AvgPickupS)
	fmt.Fprintf(w, "average extra wait\t%.1f s\n", res.Stats.AvgWaitSeconds)
	fmt.Fprintf(w, "average detour factor\t%.3f\n", res.Stats.AvgDetourFactor)
	fmt.Fprintf(w, "active taxis at end\t%d\n", res.Stats.ActiveVehicles)
	if err := w.Flush(); err != nil {
		return err
	}

	if len(res.Hourly) > 1 {
		hw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(hw, "\nhour\tsubmitted\taccepted\tno option\tavg options\t")
		for _, h := range res.Hourly {
			fmt.Fprintf(hw, "%02d\t%d\t%d\t%d\t%.2f\t\n",
				h.Hour, h.Submitted, h.Accepted, h.NoOption, h.AvgOptions)
		}
		return hw.Flush()
	}
	return nil
}
