// Command ptrider-shard runs one city of a PTRider cluster: a
// single-city engine (typically WAL-backed) behind the shard RPC
// surface plus the full /v1 API, for a gateway (ptrider-server
// -shards, or cluster.NewGateway) to route to.
//
// The city is generated synthetically, like ptrider-server's
// single-city mode, with -origin-x/-origin-y translating the city in
// the shared plane so a fleet of shards tiles disjoint service regions
// — the gateway assigns requests to shards by those regions and picks
// relay hand-off gateways across their boundaries.
//
// With -wal-dir, every mutation is journaled before it is acknowledged
// and a restart with the same flags recovers the ledger — the property
// the cluster's crash-recovery e2e leans on: a shard SIGKILLed inside
// a relay commit window replays the committed leg on restart, and the
// gateway's deferred compensation releases it.
//
// Usage:
//
//	ptrider-shard -addr :9101 -width 10 -height 10 -taxis 20 -wal-dir /var/lib/ptrider/alpha
//	ptrider-shard -addr :9102 -width 8 -height 8 -origin-x 30000 -taxis 15 -wal-dir /var/lib/ptrider/beta
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ptrider/internal/cluster"
	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/server"
	"ptrider/internal/telemetry"
	"ptrider/internal/wal"
)

func main() {
	var (
		addr      = flag.String("addr", ":9100", "listen address")
		width     = flag.Int("width", 10, "city width (intersections)")
		height    = flag.Int("height", 10, "city height (intersections)")
		originX   = flag.Float64("origin-x", 0, "city origin X in the shared plane (metres)")
		originY   = flag.Float64("origin-y", 0, "city origin Y in the shared plane (metres)")
		taxis     = flag.Int("taxis", 20, "number of taxis")
		algoName  = flag.String("algo", "dual-side", "matching algorithm")
		seed      = flag.Int64("seed", 1, "random seed")
		walDir    = flag.String("wal-dir", "", "write-ahead log directory (empty = durability off)")
		walMode   = flag.String("wal-mode", "sync", `journal mode with -wal-dir: "sync" or "async"`)
		metricsOn = flag.Bool("metrics", true, "expose GET /metrics and record engine telemetry")

		// crashAfterChoose arms the commit-window crash used by the
		// cluster's e2e harness: the process exits after a Choose is
		// journaled but before its HTTP response is written, so the
		// gateway observes an ambiguous commit.
		crashAfterChoose = flag.Bool("test-crash-after-choose", false,
			"TESTING ONLY: exit(137) after the next successful choose, before replying")
	)
	flag.Parse()

	mode := wal.ModeOff
	if *walDir != "" {
		m, err := wal.ParseMode(*walMode)
		if err != nil || m == wal.ModeOff {
			log.Fatalf("ptrider-shard: -wal-mode must be sync or async with -wal-dir")
		}
		mode = m
	}
	var reg *telemetry.Registry
	if *metricsOn {
		reg = telemetry.NewRegistry()
	}

	algo, err := core.ParseAlgorithm(*algoName)
	if err != nil {
		log.Fatalf("ptrider-shard: %v", err)
	}
	g, err := gen.GenerateNetwork(gen.CityConfig{
		Width: *width, Height: *height,
		OriginX: *originX, OriginY: *originY, Seed: *seed,
	})
	if err != nil {
		log.Fatalf("ptrider-shard: %v", err)
	}
	eng, err := core.NewEngine(g, core.Config{
		Algorithm: algo, Seed: *seed,
		Durability: mode, WALDir: *walDir,
		Telemetry: reg,
	})
	if err != nil {
		log.Fatalf("ptrider-shard: %v", err)
	}
	if !eng.Recovered() {
		eng.AddVehiclesUniform(*taxis)
	}

	opts := cluster.ShardOptions{Server: server.Options{DisableMetrics: !*metricsOn}}
	if *crashAfterChoose {
		opts.AfterChoose = func() {
			// Flush nothing, reply to no one: the commit is in the WAL
			// and the caller is left with a dead socket.
			os.Exit(137)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           cluster.NewShardHandler(eng, opts),
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("PTRider shard serving %d taxis on a %dx%d city at %s (origin %.0f,%.0f, durability=%s, recovered=%v)\n",
		eng.NumVehicles(), *width, *height, *addr, *originX, *originY, mode, eng.Recovered())

	select {
	case err := <-errCh:
		log.Fatalf("ptrider-shard: %v", err)
	case <-ctx.Done():
	}
	stop()

	log.Printf("ptrider-shard: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("ptrider-shard: http shutdown: %v", err)
	}
	if err := eng.Close(); err != nil && !errors.Is(err, wal.ErrCrashed) {
		log.Printf("ptrider-shard: close: %v", err)
	}
	log.Printf("ptrider-shard: bye")
}
