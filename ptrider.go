// Package ptrider is a price-and-time-aware ridesharing system, a
// from-scratch Go reproduction of
//
//	Chen, Gao, Liu, Xiao, Jensen, Zhu:
//	"PTRider: A Price-and-Time-Aware Ridesharing System",
//	PVLDB 11(12): 1938–1941, 2018.
//
// Unlike matchers that return a single system-optimal assignment,
// PTRider answers every ridesharing request with the full skyline of
// non-dominated ⟨vehicle, pick-up time, price⟩ options, so riders in a
// hurry can pay for a quick pickup while patient riders wait and pay
// less. Real-time answering is achieved with a grid index over the road
// network, per-vehicle kinetic trees of valid trip schedules, and
// single-/dual-side ring-search matching with bound-based pruning.
//
// The engine is built for multi-core serving (see ARCHITECTURE.md): an
// immutable routing substrate (graph, grid bounds, landmarks, pricing)
// is shared lock-free across goroutines, per-vehicle state sits behind
// per-vehicle locks, and candidate evaluation — the kinetic-tree
// insertion probes that dominate matching cost — fans out over a
// bounded worker pool. Requests, choices, ticks and stats reads may
// all be issued concurrently; matching holds no engine-wide lock.
//
// # Quick start
//
//	net, _ := ptrider.GenerateCity(ptrider.CityConfig{Width: 40, Height: 40, Seed: 1})
//	sys, _ := ptrider.New(net, ptrider.Config{NumTaxis: 200})
//	req, _ := sys.Request(sys.RandomVertex(), sys.RandomVertex(), 2)
//	for _, o := range req.Options {
//		fmt.Printf("vehicle %d: pickup %.0fs price %.2f\n", o.Vehicle, o.PickupSeconds, o.Price)
//	}
//	sys.Choose(req.ID, 0)
//	sys.Tick(60) // advance simulated time
//
// The internal packages implement the substrates (road network,
// shortest paths, grid index, kinetic trees, matchers, simulator); this
// package is the supported surface.
package ptrider

import (
	"fmt"
	"io"
	"net/http"
	"sort"

	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/geo"
	"ptrider/internal/roadnet"
	"ptrider/internal/server"
	"ptrider/internal/sim"
	"ptrider/internal/trace"
)

// VertexID identifies a road-network vertex (an intersection).
type VertexID = int32

// Point is a planar coordinate in metres.
type Point struct{ X, Y float64 }

// Edge is an undirected road segment with a travel cost in metres.
type Edge struct {
	U, V   VertexID
	Weight float64
}

// Network is an immutable road network.
type Network struct {
	g *roadnet.Graph
}

// NewNetwork builds a road network from explicit vertices and
// undirected edges. Edge weights must be positive and, for the index
// bounds to be as tight as possible, at least the Euclidean length of
// the edge.
func NewNetwork(points []Point, edges []Edge) (*Network, error) {
	b := roadnet.NewBuilder(len(points), 2*len(edges))
	for _, p := range points {
		b.AddVertex(geo.Point{X: p.X, Y: p.Y})
	}
	for _, e := range edges {
		b.AddUndirectedEdge(e.U, e.V, e.Weight)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if !roadnet.Connected(g) {
		return nil, fmt.Errorf("ptrider: network must be connected")
	}
	return &Network{g: g}, nil
}

// NumVertices returns the number of intersections.
func (n *Network) NumVertices() int { return n.g.NumVertices() }

// NumRoads returns the number of undirected road segments.
func (n *Network) NumRoads() int { return n.g.NumEdges() / 2 }

// VertexPoint returns the coordinates of vertex v.
func (n *Network) VertexPoint(v VertexID) Point {
	p := n.g.Point(v)
	return Point{X: p.X, Y: p.Y}
}

// CityConfig parameterises the synthetic city generator (the stand-in
// for the demo's Shanghai road network; see DESIGN.md §5).
type CityConfig struct {
	// Width and Height count intersections per side (≥ 2).
	Width, Height int
	// SpacingMeters is the block size (0 = 250).
	SpacingMeters float64
	// ArterialEvery makes every k-th street an arterial (0 = 5).
	ArterialEvery int
	// RemoveFrac removes this fraction of minor segments, in [0, 1).
	RemoveFrac float64
	// Seed makes generation deterministic.
	Seed int64
}

// WriteNetwork serialises a network in the ptrider text format.
func WriteNetwork(w io.Writer, n *Network) error {
	return roadnet.WriteGraph(w, n.g)
}

// ReadNetwork parses a network written by WriteNetwork.
func ReadNetwork(r io.Reader) (*Network, error) {
	g, err := roadnet.ReadGraph(r)
	if err != nil {
		return nil, err
	}
	if !roadnet.Connected(g) {
		return nil, fmt.Errorf("ptrider: network must be connected")
	}
	return &Network{g: g}, nil
}

// GenerateCity builds a synthetic city road network.
func GenerateCity(cfg CityConfig) (*Network, error) {
	g, err := gen.GenerateNetwork(gen.CityConfig{
		Width: cfg.Width, Height: cfg.Height,
		Spacing:       cfg.SpacingMeters,
		ArterialEvery: cfg.ArterialEvery,
		RemoveFrac:    cfg.RemoveFrac,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Network{g: g}, nil
}

// Trip is one workload entry: a ridesharing request submitted at Time
// seconds into the day.
type Trip = trace.Trip

// WorkloadConfig parameterises the synthetic one-day trip workload (the
// stand-in for the demo's 432,327 Shanghai trips).
type WorkloadConfig struct {
	// NumTrips scales the workload.
	NumTrips int
	// DaySeconds is the horizon (0 = 86400).
	DaySeconds float64
	// MinTripMeters drops very short trips (0 = 500).
	MinTripMeters float64
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateWorkload synthesises a diurnal, hotspot-weighted trip
// workload over the network, sorted by submission time.
func GenerateWorkload(n *Network, cfg WorkloadConfig) ([]Trip, error) {
	return gen.GenerateTrips(n.g, gen.TripConfig{
		NumTrips:      cfg.NumTrips,
		DaySeconds:    cfg.DaySeconds,
		MinTripMeters: cfg.MinTripMeters,
		Seed:          cfg.Seed,
	})
}

// Config carries the system's global settings — the knobs on the demo's
// website interface: taxi capacity, number of taxis, maximal waiting
// time, service constraint, price function, and matching algorithm.
type Config struct {
	// NumTaxis places this many vehicles uniformly at random (0 = none;
	// add more with AddVehicleAt/AddVehicles).
	NumTaxis int
	// Capacity is the per-vehicle rider capacity (0 = 4).
	Capacity int
	// SpeedKmh is the constant vehicle speed (0 = 48, the demo's).
	SpeedKmh float64
	// MaxWaitSeconds is the global maximal waiting time w (0 = 300).
	MaxWaitSeconds float64
	// Sigma is the global service (detour) constraint σ (0 = 0.4).
	Sigma float64
	// MaxPickupSeconds caps the planned pick-up time of options
	// (0 = 1800).
	MaxPickupSeconds float64
	// Algorithm selects the matcher: "naive", "single-side" or
	// "dual-side" ("" = "dual-side").
	Algorithm string
	// PriceRatio overrides the paper's f_n = 0.3 + (n−1)·0.1 when
	// non-nil; it maps rider count to the price ratio.
	PriceRatio func(n int) float64
	// GridCols and GridRows set the index resolution (0 = 16×16).
	GridCols, GridRows int
	// NumLandmarks adds ALT landmark lower bounds to the grid bounds
	// (0 = disabled).
	NumLandmarks int
	// MatchWorkers bounds the per-request parallel candidate
	// evaluation (0 = one worker per CPU; 1 = fully serial matching,
	// the paper's reference algorithm bit for bit).
	MatchWorkers int
	// CommitSlack loosens Choose when the quoted schedule went stale
	// between quote and choice (vehicle moved, other riders accepted):
	// a fresh schedule within CommitSlack·dist(s,d) metres of the
	// quoted pick-up distance and detour is committed instead of
	// failing. 0 = strict.
	CommitSlack float64
	// Seed drives vehicle placement and roaming.
	Seed int64
}

// Option is one non-dominated result ⟨vehicle, pick-up time, price⟩.
type Option struct {
	// Index is the option's position in Request.Options, passed to
	// Choose.
	Index int
	// Vehicle identifies the offering taxi.
	Vehicle VertexID
	// PickupSeconds is the planned pick-up time from now.
	PickupSeconds float64
	// PickupMeters is the same as a distance along the road network.
	PickupMeters float64
	// Price is the fare under the system's price model.
	Price float64
}

// Request is the answer to a submitted ridesharing request: the full
// skyline of options, sorted by pick-up time ascending (price therefore
// descending).
type Request struct {
	ID      int64
	Options []Option
}

// Stats is the statistics panel of the demo's website interface.
type Stats struct {
	ClockSeconds    float64
	Requests        int64
	Assigned        int64
	Completed       int64
	SharingRate     float64
	AvgResponseMs   float64
	P95ResponseMs   float64
	AvgOptions      float64
	AvgWaitSeconds  float64
	AvgDetourFactor float64
	ActiveVehicles  int
}

// Event reports a pickup or dropoff produced by Tick.
type Event struct {
	Kind    string // "pickup" or "dropoff"
	Vehicle VertexID
	Request int64
}

// Stop is one entry of a vehicle trip schedule.
type Stop struct {
	Vertex  VertexID
	Kind    string // "pickup" or "dropoff"
	Request int64
}

// System is a running PTRider instance.
type System struct {
	eng *core.Engine
	net *Network
}

// New builds a System over a network.
func New(n *Network, cfg Config) (*System, error) {
	algo := core.AlgoDualSide
	if cfg.Algorithm != "" {
		var err error
		algo, err = core.ParseAlgorithm(cfg.Algorithm)
		if err != nil {
			return nil, err
		}
	}
	eng, err := core.NewEngine(n.g, core.Config{
		GridCols: cfg.GridCols, GridRows: cfg.GridRows,
		Capacity:         cfg.Capacity,
		SpeedKmh:         cfg.SpeedKmh,
		MaxWaitSeconds:   cfg.MaxWaitSeconds,
		Sigma:            cfg.Sigma,
		MaxPickupSeconds: cfg.MaxPickupSeconds,
		PriceRatio:       cfg.PriceRatio,
		Algorithm:        algo,
		NumLandmarks:     cfg.NumLandmarks,
		MatchWorkers:     cfg.MatchWorkers,
		CommitSlack:      cfg.CommitSlack,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if cfg.NumTaxis > 0 {
		eng.AddVehiclesUniform(cfg.NumTaxis)
	}
	return &System{eng: eng, net: n}, nil
}

// Network returns the system's road network.
func (s *System) Network() *Network { return s.net }

// AddVehicles places n vehicles uniformly at random.
func (s *System) AddVehicles(n int) {
	s.eng.AddVehiclesUniform(n)
}

// AddVehicleAt places one vehicle at a vertex and returns its id.
func (s *System) AddVehicleAt(v VertexID) VertexID {
	return s.eng.AddVehicleAt(v)
}

// NumVehicles returns the in-service vehicle count.
func (s *System) NumVehicles() int { return s.eng.NumVehicles() }

// RandomVertex returns a uniformly random vertex id.
func (s *System) RandomVertex() VertexID { return s.eng.RandomVertex() }

// Request submits a ridesharing request for riders travelling from
// vertex from to vertex to under the system-global waiting time and
// service constraint, returning all non-dominated options.
func (s *System) Request(from, to VertexID, riders int) (Request, error) {
	return s.RequestWithConstraints(from, to, riders, 0, -1)
}

// RequestWithConstraints lets the rider override the maximal waiting
// time (seconds; ≤ 0 keeps the global) and the service constraint σ
// (negative keeps the global; 0 forbids any detour) — the per-rider
// settings the demo paper notes but simplifies away.
func (s *System) RequestWithConstraints(from, to VertexID, riders int, waitSeconds, sigma float64) (Request, error) {
	rec, err := s.eng.SubmitWithConstraints(from, to, riders, core.Constraints{
		WaitSeconds: waitSeconds, Sigma: sigma,
	})
	if err != nil {
		return Request{}, err
	}
	out := Request{ID: int64(rec.ID), Options: make([]Option, len(rec.Options))}
	for i, o := range rec.Options {
		out.Options[i] = Option{
			Index:         i,
			Vehicle:       o.Vehicle,
			PickupSeconds: s.eng.PickupSeconds(o),
			PickupMeters:  o.PickupDist,
			Price:         o.Price,
		}
	}
	return out, nil
}

// Choose commits the rider's selected option.
func (s *System) Choose(requestID int64, optionIndex int) error {
	return s.eng.Choose(core.RequestID(requestID), optionIndex)
}

// Decline records that the rider took none of the options.
func (s *System) Decline(requestID int64) error {
	return s.eng.Decline(core.RequestID(requestID))
}

// Tick advances simulated time by the given seconds: vehicles move,
// pickups and dropoffs fire.
func (s *System) Tick(seconds float64) ([]Event, error) {
	events, err := s.eng.Tick(seconds)
	out := make([]Event, len(events))
	for i, e := range events {
		out[i] = Event{Kind: e.Kind.String(), Vehicle: e.Vehicle, Request: int64(e.Request)}
	}
	return out, err
}

// RequestStatus returns the lifecycle state of a request: "quoted",
// "assigned", "onboard", "completed" or "declined".
func (s *System) RequestStatus(requestID int64) (string, error) {
	rec, err := s.eng.Request(core.RequestID(requestID))
	if err != nil {
		return "", err
	}
	return rec.Status.String(), nil
}

// VehicleSchedules returns a vehicle's current location and every valid
// trip schedule of its kinetic tree.
func (s *System) VehicleSchedules(vehicle VertexID) (location VertexID, schedules [][]Stop, err error) {
	loc, branches, err := s.eng.VehicleSchedules(vehicle)
	if err != nil {
		return 0, nil, err
	}
	out := make([][]Stop, len(branches))
	for i, b := range branches {
		row := make([]Stop, len(b))
		for j, p := range b {
			row[j] = Stop{Vertex: p.Loc, Kind: p.Kind.String(), Request: int64(p.Req)}
		}
		out[i] = row
	}
	return loc, out, nil
}

// SetAlgorithm switches the matching algorithm at run time.
func (s *System) SetAlgorithm(name string) error {
	algo, err := core.ParseAlgorithm(name)
	if err != nil {
		return err
	}
	return s.eng.SetAlgorithm(algo)
}

// Stats snapshots the statistics panel.
func (s *System) Stats() Stats {
	st := s.eng.Stats()
	return Stats{
		ClockSeconds:    st.Clock,
		Requests:        st.Requests,
		Assigned:        st.Assigned,
		Completed:       st.Completed,
		SharingRate:     st.SharingRate,
		AvgResponseMs:   st.AvgResponseMs,
		P95ResponseMs:   st.P95ResponseMs,
		AvgOptions:      st.AvgOptions,
		AvgWaitSeconds:  st.AvgWaitSeconds,
		AvgDetourFactor: st.AvgDetourFactor,
		ActiveVehicles:  st.ActiveVehicles,
	}
}

// HTTPHandler exposes the system as the demo's JSON API (see
// internal/server for the endpoint reference).
func (s *System) HTTPHandler() http.Handler {
	return server.New(s.eng).Handler()
}

// SimOptions parameterises RunWorkload.
type SimOptions struct {
	// TickSeconds is the movement step (0 = 1).
	TickSeconds float64
	// Choice selects the rider model: "earliest", "cheapest", "uniform"
	// or "utility" ("" = "utility").
	Choice string
	// FailuresPerHour removes random vehicles at this rate (failure
	// injection).
	FailuresPerHour float64
	// Seed drives choices and failures.
	Seed int64
}

// HourStats is one hour of a replay (requests bucketed by submission
// time).
type HourStats struct {
	Hour       int
	Submitted  int
	Accepted   int
	NoOption   int
	AvgOptions float64
}

// SimResult summarises a workload replay.
type SimResult struct {
	Stats      Stats
	Submitted  int
	Accepted   int
	Declined   int
	NoOption   int
	AvgOptions float64
	AvgPrice   float64
	AvgPickupS float64
	// Hourly is the statistics-over-the-day view, for hours with
	// traffic, in chronological order.
	Hourly []HourStats
}

func choiceModel(name string) (sim.ChoiceModel, error) {
	m, err := sim.ParseChoiceModel(name)
	if err != nil {
		return nil, fmt.Errorf("ptrider: unknown choice model %q", name)
	}
	return m, nil
}

// RunWorkload replays a trip workload (from GenerateWorkload or a
// trace file) against the system and returns aggregate results.
func (s *System) RunWorkload(trips []Trip, opts SimOptions) (SimResult, error) {
	choice, err := choiceModel(opts.Choice)
	if err != nil {
		return SimResult{}, err
	}
	simu, err := sim.New(s.eng, trips, sim.Config{
		TickSeconds:     opts.TickSeconds,
		Choice:          choice,
		Seed:            opts.Seed,
		FailuresPerHour: opts.FailuresPerHour,
	})
	if err != nil {
		return SimResult{}, err
	}
	res, err := simu.Run()
	if err != nil {
		return SimResult{}, err
	}
	out := SimResult{
		Stats:      s.Stats(),
		Submitted:  res.Submitted,
		Accepted:   res.Accepted,
		Declined:   res.Declined,
		NoOption:   res.NoOption,
		AvgOptions: res.OptionsPerRequest.Mean(),
		AvgPrice:   res.Prices.Mean(),
		AvgPickupS: res.PickupSeconds.Mean(),
	}
	for _, h := range res.Hourly {
		out.Hourly = append(out.Hourly, HourStats{
			Hour: h.Hour, Submitted: h.Submitted, Accepted: h.Accepted,
			NoOption: h.NoOption, AvgOptions: h.AvgOptions,
		})
	}
	sort.Slice(out.Hourly, func(i, j int) bool { return out.Hourly[i].Hour < out.Hourly[j].Hour })
	return out, nil
}
