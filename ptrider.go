// Package ptrider is a price-and-time-aware ridesharing system, a
// from-scratch Go reproduction of
//
//	Chen, Gao, Liu, Xiao, Jensen, Zhu:
//	"PTRider: A Price-and-Time-Aware Ridesharing System",
//	PVLDB 11(12): 1938–1941, 2018.
//
// Unlike matchers that return a single system-optimal assignment,
// PTRider answers every ridesharing request with the full skyline of
// non-dominated ⟨vehicle, pick-up time, price⟩ options, so riders in a
// hurry can pay for a quick pickup while patient riders wait and pay
// less. Real-time answering is achieved with a grid index over the road
// network, per-vehicle kinetic trees of valid trip schedules, and
// single-/dual-side ring-search matching with bound-based pruning.
//
// The engine is built for multi-core serving (see ARCHITECTURE.md): an
// immutable routing substrate (graph, grid bounds, landmarks, pricing)
// is shared lock-free across goroutines, per-vehicle state sits behind
// per-vehicle locks, and candidate evaluation — the kinetic-tree
// insertion probes that dominate matching cost — fans out over a
// bounded worker pool. Requests, choices, ticks and stats reads may
// all be issued concurrently; matching holds no engine-wide lock.
//
// A System is backed by the core Service interface, so one set of
// verbs — Request, Choose, Decline, Tick, Stats — serves every backend:
// New builds a single-city system, NewMulti a multi-city one whose
// requests are routed to per-city engines by coordinate and whose
// cross-city trips are served as two-leg relay itineraries when relay
// scheduling is enabled. HTTPHandler exposes any System over the same
// versioned /v1 JSON API (see internal/server).
//
// # Quick start
//
//	net, _ := ptrider.GenerateCity(ptrider.CityConfig{Width: 40, Height: 40, Seed: 1})
//	sys, _ := ptrider.New(net, ptrider.Config{NumTaxis: 200})
//	req, _ := sys.Request(sys.RandomVertex(), sys.RandomVertex(), 2)
//	for _, o := range req.Options {
//		fmt.Printf("vehicle %d: pickup %.0fs price %.2f\n", o.Vehicle, o.PickupSeconds, o.Price)
//	}
//	sys.Choose(req.ID, 0)
//	sys.Tick(60) // advance simulated time
//
// # Multi-city quick start
//
//	sys, _ := ptrider.NewMulti("east:40x40:500,west:28x28:200", ptrider.MultiConfig{
//		Config:                ptrider.Config{Seed: 1},
//		EnableRelay:           true, // serve cross-city trips as two-leg relays
//		TransferBufferSeconds: 120,
//	})
//	east := sys.Cities()[0]
//	req, _ := sys.RequestIn(east.Name, 12, 17, 1)    // city-local vertices
//	cross, _ := sys.RequestAt(100, 900, 12000, 400, 1) // coordinates, may cross cities
//	if cross.Relay != nil {
//		fmt.Printf("relay %s → %s: %d joint options\n",
//			cross.Relay.Origin, cross.Relay.Dest, len(cross.Options))
//	}
//	sys.Choose(cross.ID, 0) // two-phase commit of both legs
//	sys.Tick(60)            // every city ticks concurrently
//
// # Cluster quick start
//
// The same topology scales across processes: each city runs as its
// own ptrider-shard process (one WAL-backed engine behind the shard
// RPC surface) and ptrider-server in gateway mode serves the
// unchanged /v1 API over the fleet, relaying cross-city trips over
// real sockets with idempotent retries and deferred compensation (see
// internal/cluster and ARCHITECTURE.md "Horizontal scale-out"):
//
//	ptrider-shard  -addr :9101 -width 40 -height 40 -taxis 500 -wal-dir /var/lib/ptrider/east
//	ptrider-shard  -addr :9102 -width 28 -height 28 -origin-x 30000 -taxis 200 -wal-dir /var/lib/ptrider/west
//	ptrider-server -addr :8080 -shards "east=localhost:9101,west=localhost:9102"
//
// The internal packages implement the substrates (road network,
// shortest paths, grid index, kinetic trees, matchers, simulator); this
// package is the supported surface.
package ptrider

import (
	"fmt"
	"io"
	"net/http"
	"sort"

	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/geo"
	"ptrider/internal/multicity"
	"ptrider/internal/relay"
	"ptrider/internal/roadnet"
	"ptrider/internal/server"
	"ptrider/internal/sim"
	"ptrider/internal/trace"
)

// VertexID identifies a road-network vertex (an intersection).
type VertexID = int32

// Point is a planar coordinate in metres.
type Point struct{ X, Y float64 }

// Edge is an undirected road segment with a travel cost in metres.
type Edge struct {
	U, V   VertexID
	Weight float64
}

// Network is an immutable road network.
type Network struct {
	g *roadnet.Graph
}

// NewNetwork builds a road network from explicit vertices and
// undirected edges. Edge weights must be positive and, for the index
// bounds to be as tight as possible, at least the Euclidean length of
// the edge.
func NewNetwork(points []Point, edges []Edge) (*Network, error) {
	b := roadnet.NewBuilder(len(points), 2*len(edges))
	for _, p := range points {
		b.AddVertex(geo.Point{X: p.X, Y: p.Y})
	}
	for _, e := range edges {
		b.AddUndirectedEdge(e.U, e.V, e.Weight)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if !roadnet.Connected(g) {
		return nil, fmt.Errorf("ptrider: network must be connected")
	}
	return &Network{g: g}, nil
}

// NumVertices returns the number of intersections.
func (n *Network) NumVertices() int { return n.g.NumVertices() }

// NumRoads returns the number of undirected road segments.
func (n *Network) NumRoads() int { return n.g.NumEdges() / 2 }

// VertexPoint returns the coordinates of vertex v.
func (n *Network) VertexPoint(v VertexID) Point {
	p := n.g.Point(v)
	return Point{X: p.X, Y: p.Y}
}

// CityConfig parameterises the synthetic city generator (the stand-in
// for the demo's Shanghai road network; see DESIGN.md §5).
type CityConfig struct {
	// Width and Height count intersections per side (≥ 2).
	Width, Height int
	// SpacingMeters is the block size (0 = 250).
	SpacingMeters float64
	// ArterialEvery makes every k-th street an arterial (0 = 5).
	ArterialEvery int
	// RemoveFrac removes this fraction of minor segments, in [0, 1).
	RemoveFrac float64
	// Seed makes generation deterministic.
	Seed int64
}

// WriteNetwork serialises a network in the ptrider text format.
func WriteNetwork(w io.Writer, n *Network) error {
	return roadnet.WriteGraph(w, n.g)
}

// ReadNetwork parses a network written by WriteNetwork.
func ReadNetwork(r io.Reader) (*Network, error) {
	g, err := roadnet.ReadGraph(r)
	if err != nil {
		return nil, err
	}
	if !roadnet.Connected(g) {
		return nil, fmt.Errorf("ptrider: network must be connected")
	}
	return &Network{g: g}, nil
}

// GenerateCity builds a synthetic city road network.
func GenerateCity(cfg CityConfig) (*Network, error) {
	g, err := gen.GenerateNetwork(gen.CityConfig{
		Width: cfg.Width, Height: cfg.Height,
		Spacing:       cfg.SpacingMeters,
		ArterialEvery: cfg.ArterialEvery,
		RemoveFrac:    cfg.RemoveFrac,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Network{g: g}, nil
}

// Trip is one workload entry: a ridesharing request submitted at Time
// seconds into the day.
type Trip = trace.Trip

// WorkloadConfig parameterises the synthetic one-day trip workload (the
// stand-in for the demo's 432,327 Shanghai trips).
type WorkloadConfig struct {
	// NumTrips scales the workload.
	NumTrips int
	// DaySeconds is the horizon (0 = 86400).
	DaySeconds float64
	// MinTripMeters drops very short trips (0 = 500).
	MinTripMeters float64
	// PeakHours concentrates arrivals into the two rush windows
	// instead of the default gentle double-peak profile — the workload
	// that overloads hot cells and exercises surge pricing.
	PeakHours bool
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateWorkload synthesises a diurnal, hotspot-weighted trip
// workload over the network, sorted by submission time.
func GenerateWorkload(n *Network, cfg WorkloadConfig) ([]Trip, error) {
	var hours []float64
	if cfg.PeakHours {
		hours = gen.PeakHourlyWeights()
	}
	return gen.GenerateTrips(n.g, gen.TripConfig{
		NumTrips:      cfg.NumTrips,
		DaySeconds:    cfg.DaySeconds,
		MinTripMeters: cfg.MinTripMeters,
		HourlyWeights: hours,
		Seed:          cfg.Seed,
	})
}

// Config carries the system's global settings — the knobs on the demo's
// website interface: taxi capacity, number of taxis, maximal waiting
// time, service constraint, price function, and matching algorithm.
type Config struct {
	// NumTaxis places this many vehicles uniformly at random (0 = none;
	// add more with AddVehicleAt/AddVehicles). In a multi-city system
	// the per-city fleet sizes come from the city spec instead.
	NumTaxis int
	// Capacity is the per-vehicle rider capacity (0 = 4).
	Capacity int
	// SpeedKmh is the constant vehicle speed (0 = 48, the demo's).
	SpeedKmh float64
	// MaxWaitSeconds is the global maximal waiting time w (0 = 300).
	MaxWaitSeconds float64
	// Sigma is the global service (detour) constraint σ (0 = 0.4).
	Sigma float64
	// MaxPickupSeconds caps the planned pick-up time of options
	// (0 = 1800).
	MaxPickupSeconds float64
	// Algorithm selects the matcher: "naive", "single-side" or
	// "dual-side" ("" = "dual-side").
	Algorithm string
	// PriceRatio overrides the paper's f_n = 0.3 + (n−1)·0.1 when
	// non-nil; it maps rider count to the price ratio.
	PriceRatio func(n int) float64
	// GridCols and GridRows set the index resolution (0 = 16×16).
	GridCols, GridRows int
	// NumLandmarks adds ALT landmark lower bounds to the grid bounds
	// (0 = disabled).
	NumLandmarks int
	// MatchWorkers bounds the per-request parallel candidate
	// evaluation (0 = one worker per CPU; 1 = fully serial matching,
	// the paper's reference algorithm bit for bit).
	MatchWorkers int
	// TickWorkers bounds Tick's parallel per-vehicle shard fan-out
	// (0 = one worker per CPU; 1 = the fully serial reference step).
	// Serial and parallel ticks produce identical events. On a
	// multi-city system the value is a total budget divided across the
	// concurrently-ticking cities.
	TickWorkers int
	// CommitSlack loosens Choose when the quoted schedule went stale
	// between quote and choice (vehicle moved, other riders accepted):
	// a fresh schedule within CommitSlack·dist(s,d) metres of the
	// quoted pick-up distance and detour is committed instead of
	// failing. 0 = strict.
	CommitSlack float64
	// SurgeEnabled turns on per-cell dynamic pricing: a demand/supply
	// tracker per grid cell scales the paper's price ratio with tiered
	// multipliers, re-evaluated once per surge epoch. Off (the
	// default), prices are exactly the paper's static fares.
	SurgeEnabled bool
	// SurgeEpochSeconds is the multiplier re-evaluation period
	// (0 = 60).
	SurgeEpochSeconds float64
	// Seed drives vehicle placement and roaming.
	Seed int64
}

// coreConfig translates the public configuration into the engine's.
func coreConfig(cfg Config) (core.Config, error) {
	algo := core.AlgoDualSide
	if cfg.Algorithm != "" {
		var err error
		algo, err = core.ParseAlgorithm(cfg.Algorithm)
		if err != nil {
			return core.Config{}, err
		}
	}
	return core.Config{
		GridCols: cfg.GridCols, GridRows: cfg.GridRows,
		Capacity:          cfg.Capacity,
		SpeedKmh:          cfg.SpeedKmh,
		MaxWaitSeconds:    cfg.MaxWaitSeconds,
		Sigma:             cfg.Sigma,
		MaxPickupSeconds:  cfg.MaxPickupSeconds,
		PriceRatio:        cfg.PriceRatio,
		Algorithm:         algo,
		NumLandmarks:      cfg.NumLandmarks,
		MatchWorkers:      cfg.MatchWorkers,
		TickWorkers:       cfg.TickWorkers,
		CommitSlack:       cfg.CommitSlack,
		SurgeEnabled:      cfg.SurgeEnabled,
		SurgeEpochSeconds: cfg.SurgeEpochSeconds,
		Seed:              cfg.Seed,
	}, nil
}

// MultiConfig parameterises NewMulti.
type MultiConfig struct {
	// Config is the base per-city engine configuration (NumTaxis is
	// ignored; fleet sizes come from the city spec).
	Config
	// EnableRelay serves cross-city trips as two-leg relay itineraries
	// over hand-off gateways instead of rejecting them.
	EnableRelay bool
	// TransferBufferSeconds is the hand-off margin chained between the
	// relay legs' ETAs (0 = 120; negative = a literal zero buffer).
	TransferBufferSeconds float64
	// MaxGateways bounds the hand-off gateway pairs quoted per city
	// pair (0 = 3).
	MaxGateways int
}

// Option is one non-dominated result ⟨vehicle, pick-up time, price⟩.
type Option struct {
	// Index is the option's position in Request.Options, passed to
	// Choose.
	Index int
	// Vehicle identifies the offering taxi (a relay option's leg-1
	// taxi).
	Vehicle VertexID
	// PickupSeconds is the planned pick-up time from now. For a relay
	// option it is the composed door-to-destination ETA — the joint
	// skyline's time axis.
	PickupSeconds float64
	// PickupMeters is the same as a distance along the road network.
	PickupMeters float64
	// Price is the fare under the system's price model (a relay
	// option's summed leg fares).
	Price float64
}

// RelayLeg is one leg of a relay option's per-leg breakdown.
type RelayLeg struct {
	Vehicle VertexID
	Price   float64
}

// RelayOption is one row of a relay trip's joint skyline.
type RelayOption struct {
	// Index aligns with Request.Options.
	Index int
	// Gateway indexes the trip's hand-off gateways.
	Gateway int
	// Fare is Leg1.Price + Leg2.Price.
	Fare float64
	// PickupSeconds is leg 1's planned door pick-up ETA; ETASeconds the
	// composed door-to-destination worst case.
	PickupSeconds float64
	ETASeconds    float64
	Leg1, Leg2    RelayLeg
}

// RelayItinerary is the two-leg view of a cross-city relay trip.
type RelayItinerary struct {
	RequestID int64
	// Origin and Dest are the two city names.
	Origin, Dest string
	// State is the trip lifecycle stage: "quoted", "leg1-committed",
	// "in-transfer", "leg2-active", "completed", "declined", "aborted"
	// or "failed".
	State string
	// TransferBufferSeconds is the scheduler's hand-off margin.
	TransferBufferSeconds float64
	Options               []RelayOption
	// Chosen is the committed option index (-1 while quoted/declined).
	Chosen int
}

func relayItinerary(rv *core.RelayView) *RelayItinerary {
	out := &RelayItinerary{
		RequestID:             int64(rv.RequestID),
		Origin:                rv.Origin,
		Dest:                  rv.Dest,
		State:                 rv.State,
		TransferBufferSeconds: rv.TransferBufferSeconds,
		Options:               make([]RelayOption, len(rv.Options)),
		Chosen:                rv.Chosen,
	}
	for i, o := range rv.Options {
		out.Options[i] = RelayOption{
			Index:         i,
			Gateway:       o.Gateway,
			Fare:          o.Fare,
			PickupSeconds: o.PickupSeconds,
			ETASeconds:    o.ETASeconds,
			Leg1:          RelayLeg{Vehicle: o.Leg1.Vehicle, Price: o.Leg1.Price},
			Leg2:          RelayLeg{Vehicle: o.Leg2.Vehicle, Price: o.Leg2.Price},
		}
	}
	return out
}

// Request is the answer to a submitted ridesharing request: the full
// skyline of options, sorted by pick-up time ascending (price therefore
// descending).
type Request struct {
	ID      int64
	Options []Option
	// City is the serving city (a relay trip's origin city).
	City string
	// Relay carries the two-leg itinerary when the request crossed
	// cities and was served by relay scheduling; nil otherwise.
	Relay *RelayItinerary
}

// Stats is the statistics panel of the demo's website interface.
type Stats struct {
	ClockSeconds    float64
	Requests        int64
	Assigned        int64
	Completed       int64
	SharingRate     float64
	AvgResponseMs   float64
	P95ResponseMs   float64
	AvgOptions      float64
	AvgWaitSeconds  float64
	AvgDetourFactor float64
	ActiveVehicles  int
	// Tick is the sharded time-advancement panel.
	Tick TickStats
	// Surge is the dynamic-pricing panel (zero when surge is off).
	Surge SurgeStats
}

// SurgeStats summarises the per-cell surge tracker: how many cells are
// currently surged, the hottest multiplier, and how many quotes went
// out above base fare. On a multi-city system Cells, ActiveCells and
// SurgedQuotes sum across cities; Epoch and MaxMultiplier are maxima
// and AvgMultiplier is cell-weighted.
type SurgeStats struct {
	Enabled       bool
	Epoch         uint64
	EpochSeconds  float64
	Cells         int
	ActiveCells   int
	MaxMultiplier float64
	AvgMultiplier float64
	SurgedQuotes  int64
}

// TickStats summarises Tick's sharded time advancement: shard width,
// wall time per tick, merged events per tick and the worst
// slowest−fastest shard gap seen. On a multi-city system Workers and
// AvgEvents sum across cities; the timing fields are the maxima.
type TickStats struct {
	Workers        int
	Ticks          int64
	LastWallMs     float64
	AvgWallMs      float64
	AvgEvents      float64
	MaxShardSkewMs float64
}

// RelayStats is the relay scheduler's counter panel.
type RelayStats struct {
	Quoted    int64
	LegQuotes int64
	Committed int64
	Aborted   int64
	Declined  int64
	Completed int64
	Failed    int64
	Active    int64
}

// CityInfo describes one city of a system. The Min/Max coordinates
// bound its service region — the addresses RequestAt assigns to it.
type CityInfo struct {
	Name     string
	Vertices int
	Vehicles int
	MinX     float64
	MinY     float64
	MaxX     float64
	MaxY     float64
}

// Event reports a pickup or dropoff produced by Tick.
type Event struct {
	Kind    string // "pickup" or "dropoff"
	Vehicle VertexID
	Request int64
	// City is the city the event happened in.
	City string
}

// Stop is one entry of a vehicle trip schedule.
type Stop struct {
	Vertex  VertexID
	Kind    string // "pickup" or "dropoff"
	Request int64
}

// System is a running PTRider instance over one city or many — every
// backend is served through the same core Service interface, so the
// verbs below behave identically whichever constructor built it.
type System struct {
	svc    core.Service
	eng    *core.Engine      // non-nil for single-city systems
	router *multicity.Router // non-nil for multi-city systems
	net    *Network          // the single city's network (nil for multi)
}

// New builds a single-city System over a network.
func New(n *Network, cfg Config) (*System, error) {
	ccfg, err := coreConfig(cfg)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(n.g, ccfg)
	if err != nil {
		return nil, err
	}
	if cfg.NumTaxis > 0 {
		eng.AddVehiclesUniform(cfg.NumTaxis)
	}
	return &System{svc: eng, eng: eng, net: n}, nil
}

// NewMulti builds a multi-city System from a compact city spec
//
//	name:WIDTHxHEIGHT:TAXIS[,name:WIDTHxHEIGHT:TAXIS...]
//
// e.g. "east:40x40:500,west:28x28:200": one independently tuned engine
// per synthetic city, laid out disjointly, with requests routed to
// cities by coordinate (RequestAt) or addressed explicitly
// (RequestIn). With cfg.EnableRelay, a trip whose origin and
// destination fall in different cities is quoted as a two-leg relay
// itinerary over hand-off gateways and committed atomically; without
// it, cross-city trips are rejected with a typed error.
func NewMulti(cities string, cfg MultiConfig) (*System, error) {
	base, err := coreConfig(cfg.Config)
	if err != nil {
		return nil, err
	}
	router, err := multicity.BuildFromSpecWithConfig(cities, base, cfg.Seed,
		multicity.RouterConfig{
			EnableRelay: cfg.EnableRelay,
			Relay: relay.Config{
				TransferBufferSeconds: cfg.TransferBufferSeconds,
				MaxGateways:           cfg.MaxGateways,
			},
		})
	if err != nil {
		return nil, err
	}
	return &System{svc: router, router: router}, nil
}

// Network returns the system's road network (nil for a multi-city
// system, whose per-city networks live behind the city names).
func (s *System) Network() *Network { return s.net }

// AddVehicles places n vehicles uniformly at random (single-city
// systems; a multi-city system sizes its fleets in the city spec).
func (s *System) AddVehicles(n int) {
	if s.eng != nil {
		s.eng.AddVehiclesUniform(n)
	}
}

// AddVehicleAt places one vehicle at a vertex and returns its id
// (single-city systems).
func (s *System) AddVehicleAt(v VertexID) VertexID {
	if s.eng == nil {
		return -1
	}
	return s.eng.AddVehicleAt(v)
}

// NumVehicles returns the in-service vehicle count across all cities.
func (s *System) NumVehicles() int {
	total := 0
	for _, c := range s.svc.Cities() {
		total += c.Vehicles
	}
	return total
}

// RandomVertex returns a uniformly random vertex id (single-city
// systems).
func (s *System) RandomVertex() VertexID {
	if s.eng == nil {
		return 0
	}
	return s.eng.RandomVertex()
}

// Cities lists the system's cities — a single-city system reports one.
func (s *System) Cities() []CityInfo {
	cities := s.svc.Cities()
	out := make([]CityInfo, len(cities))
	for i, c := range cities {
		out[i] = CityInfo{
			Name: c.Name, Vertices: c.Vertices, Vehicles: c.Vehicles,
			MinX: c.Region.Min.X, MinY: c.Region.Min.Y,
			MaxX: c.Region.Max.X, MaxY: c.Region.Max.Y,
		}
	}
	return out
}

// buildRequest renders a service record as the public answer.
func buildRequest(rec *core.ServiceRecord) Request {
	out := Request{ID: int64(rec.ID), City: rec.City, Options: make([]Option, len(rec.Options))}
	for i, o := range rec.Options {
		out.Options[i] = Option{
			Index:         i,
			Vehicle:       o.Vehicle,
			PickupSeconds: rec.PickupSecondsOf(o),
			PickupMeters:  o.PickupDist,
			Price:         o.Price,
		}
	}
	if rec.Relay != nil {
		out.Relay = relayItinerary(rec.Relay)
	}
	return out
}

func (s *System) submit(spec core.SubmitSpec) (Request, error) {
	rec, err := s.svc.SubmitRequest(spec)
	if err != nil {
		return Request{}, err
	}
	return buildRequest(rec), nil
}

// Request submits a ridesharing request for riders travelling from
// vertex from to vertex to under the system-global waiting time and
// service constraint, returning all non-dominated options. On a
// multi-city system vertex ids are ambiguous — use RequestIn or
// RequestAt there.
func (s *System) Request(from, to VertexID, riders int) (Request, error) {
	return s.RequestWithConstraints(from, to, riders, 0, -1)
}

// RequestWithConstraints lets the rider override the maximal waiting
// time (seconds; ≤ 0 keeps the global) and the service constraint σ
// (negative keeps the global; 0 forbids any detour) — the per-rider
// settings the demo paper notes but simplifies away.
func (s *System) RequestWithConstraints(from, to VertexID, riders int, waitSeconds, sigma float64) (Request, error) {
	return s.submit(core.SubmitSpec{
		S: from, D: to, Riders: riders,
		Constraints: core.Constraints{WaitSeconds: waitSeconds, Sigma: sigma},
	})
}

// RequestIn submits a request addressed by city name and city-local
// vertex ids.
func (s *System) RequestIn(city string, from, to VertexID, riders int) (Request, error) {
	return s.submit(core.SubmitSpec{
		City: city, S: from, D: to, Riders: riders,
		Constraints: core.DefaultConstraints(),
	})
}

// RequestAt submits a request addressed by planar coordinates: the
// origin's city answers it, and — when the destination falls in a
// different city of a relay-enabled multi-city system — the answer is
// a two-leg relay itinerary (Request.Relay) whose joint options price
// and time the whole journey.
func (s *System) RequestAt(ox, oy, dx, dy float64, riders int) (Request, error) {
	return s.submit(core.SubmitSpec{
		ByCoords:    true,
		Origin:      geo.Point{X: ox, Y: oy},
		Dest:        geo.Point{X: dx, Y: dy},
		Riders:      riders,
		Constraints: core.DefaultConstraints(),
	})
}

// Choose commits the rider's selected option. For a relay itinerary
// this is the two-phase commit of both legs: both book, or neither
// stays booked.
func (s *System) Choose(requestID int64, optionIndex int) error {
	return s.svc.Choose(core.RequestID(requestID), optionIndex)
}

// Decline records that the rider took none of the options.
func (s *System) Decline(requestID int64) error {
	return s.svc.Decline(core.RequestID(requestID))
}

// Tick advances simulated time by the given seconds: vehicles move,
// pickups and dropoffs fire. Every city of a multi-city system ticks
// concurrently.
func (s *System) Tick(seconds float64) ([]Event, error) {
	events, err := s.svc.Advance(seconds)
	out := make([]Event, len(events))
	for i, e := range events {
		out[i] = Event{Kind: e.Kind.String(), Vehicle: e.Vehicle, Request: int64(e.Request), City: e.City}
	}
	return out, err
}

// RequestStatus returns the lifecycle state of a request: "quoted",
// "assigned", "onboard", "completed" or "declined".
func (s *System) RequestStatus(requestID int64) (string, error) {
	rec, err := s.svc.GetRequest(core.RequestID(requestID))
	if err != nil {
		return "", err
	}
	return rec.Status.String(), nil
}

// RelayItinerary returns the two-leg view of a relay trip previously
// answered by RequestAt on a relay-enabled multi-city system.
func (s *System) RelayItinerary(requestID int64) (*RelayItinerary, error) {
	rv, err := s.svc.RelayItinerary(core.RequestID(requestID))
	if err != nil {
		return nil, err
	}
	return relayItinerary(rv), nil
}

// VehicleSchedules returns a vehicle's current location and every valid
// trip schedule of its kinetic tree (single-city systems; see
// VehicleSchedulesIn for multi-city).
func (s *System) VehicleSchedules(vehicle VertexID) (location VertexID, schedules [][]Stop, err error) {
	return s.VehicleSchedulesIn("", vehicle)
}

// VehicleSchedulesIn is VehicleSchedules addressed by city.
func (s *System) VehicleSchedulesIn(city string, vehicle VertexID) (location VertexID, schedules [][]Stop, err error) {
	it, err := s.svc.VehicleItinerary(city, vehicle)
	if err != nil {
		return 0, nil, err
	}
	out := make([][]Stop, len(it.Branches))
	for i, b := range it.Branches {
		row := make([]Stop, len(b))
		for j, p := range b {
			row[j] = Stop{Vertex: p.Loc, Kind: p.Kind.String(), Request: int64(p.Req)}
		}
		out[i] = row
	}
	return it.Location, out, nil
}

// SetAlgorithm switches the matching algorithm at run time, in every
// city.
func (s *System) SetAlgorithm(name string) error {
	algo, err := core.ParseAlgorithm(name)
	if err != nil {
		return err
	}
	for _, c := range s.svc.Cities() {
		if err := s.svc.SetCityAlgorithm(c.Name, algo); err != nil {
			return err
		}
	}
	return nil
}

// statsOf maps an engine panel into the public shape.
func statsOf(st core.EngineStats) Stats {
	return Stats{
		ClockSeconds:    st.Clock,
		Requests:        st.Requests,
		Assigned:        st.Assigned,
		Completed:       st.Completed,
		SharingRate:     st.SharingRate,
		AvgResponseMs:   st.AvgResponseMs,
		P95ResponseMs:   st.P95ResponseMs,
		AvgOptions:      st.AvgOptions,
		AvgWaitSeconds:  st.AvgWaitSeconds,
		AvgDetourFactor: st.AvgDetourFactor,
		ActiveVehicles:  st.ActiveVehicles,
		Tick: TickStats{
			Workers:        st.Tick.Workers,
			Ticks:          st.Tick.Ticks,
			LastWallMs:     st.Tick.LastWallMs,
			AvgWallMs:      st.Tick.AvgWallMs,
			AvgEvents:      st.Tick.AvgEvents,
			MaxShardSkewMs: st.Tick.MaxShardSkewMs,
		},
		Surge: SurgeStats{
			Enabled:       st.Surge.Enabled,
			Epoch:         st.Surge.Epoch,
			EpochSeconds:  st.Surge.EpochSeconds,
			Cells:         st.Surge.Cells,
			ActiveCells:   st.Surge.ActiveCells,
			MaxMultiplier: st.Surge.MaxMultiplier,
			AvgMultiplier: st.Surge.AvgMultiplier,
			SurgedQuotes:  st.Surge.SurgedQuotes,
		},
	}
}

// Stats snapshots the statistics panel (the cross-city aggregate on a
// multi-city system).
func (s *System) Stats() Stats {
	return statsOf(s.svc.ServiceStats().Total)
}

// CityStats snapshots every city's own panel.
func (s *System) CityStats() map[string]Stats {
	st := s.svc.ServiceStats()
	out := make(map[string]Stats, len(st.Cities))
	for name, cs := range st.Cities {
		out[name] = statsOf(cs)
	}
	return out
}

// RelayStats snapshots the relay scheduler's panel; ok is false when
// the system does not relay cross-city trips.
func (s *System) RelayStats() (rs RelayStats, ok bool) {
	st := s.svc.ServiceStats()
	if !st.RelayEnabled {
		return RelayStats{}, false
	}
	return RelayStats(st.Relay), true
}

// HTTPHandler exposes the system over the versioned /v1 JSON API (plus
// the legacy /api aliases); see internal/server for the endpoint
// reference. Single- and multi-city systems serve the identical
// surface.
func (s *System) HTTPHandler() http.Handler {
	return server.NewService(s.svc).Handler()
}

// SimOptions parameterises RunWorkload.
type SimOptions struct {
	// TickSeconds is the movement step (0 = 1).
	TickSeconds float64
	// Choice selects the rider model: "earliest", "cheapest", "uniform",
	// "priceaware" (declines steep surge premiums) or "utility"
	// ("" = "utility").
	Choice string
	// FailuresPerHour removes random vehicles at this rate (failure
	// injection; single-city replays only).
	FailuresPerHour float64
	// Seed drives choices and failures.
	Seed int64
}

// HourStats is one hour of a replay (requests bucketed by submission
// time).
type HourStats struct {
	Hour       int
	Submitted  int
	Accepted   int
	NoOption   int
	AvgOptions float64
}

// SimResult summarises a workload replay.
type SimResult struct {
	Stats      Stats
	Submitted  int
	Accepted   int
	Declined   int
	NoOption   int
	AvgOptions float64
	AvgPrice   float64
	AvgPickupS float64
	// Hourly is the statistics-over-the-day view, for hours with
	// traffic, in chronological order.
	Hourly []HourStats
}

func choiceModel(name string) (sim.ChoiceModel, error) {
	m, err := sim.ParseChoiceModel(name)
	if err != nil {
		return nil, fmt.Errorf("ptrider: unknown choice model %q", name)
	}
	return m, nil
}

// RunWorkload replays a trip workload (from GenerateWorkload or a
// trace file) against a single-city system and returns aggregate
// results. Multi-city systems replay with RunMultiWorkload.
func (s *System) RunWorkload(trips []Trip, opts SimOptions) (SimResult, error) {
	if s.eng == nil {
		return SimResult{}, fmt.Errorf("ptrider: RunWorkload needs a single-city system; use RunMultiWorkload")
	}
	choice, err := choiceModel(opts.Choice)
	if err != nil {
		return SimResult{}, err
	}
	simu, err := sim.New(s.eng, trips, sim.Config{
		TickSeconds:     opts.TickSeconds,
		Choice:          choice,
		Seed:            opts.Seed,
		FailuresPerHour: opts.FailuresPerHour,
	})
	if err != nil {
		return SimResult{}, err
	}
	res, err := simu.Run()
	if err != nil {
		return SimResult{}, err
	}
	out := SimResult{
		Stats:      s.Stats(),
		Submitted:  res.Submitted,
		Accepted:   res.Accepted,
		Declined:   res.Declined,
		NoOption:   res.NoOption,
		AvgOptions: res.OptionsPerRequest.Mean(),
		AvgPrice:   res.Prices.Mean(),
		AvgPickupS: res.PickupSeconds.Mean(),
	}
	for _, h := range res.Hourly {
		out.Hourly = append(out.Hourly, HourStats{
			Hour: h.Hour, Submitted: h.Submitted, Accepted: h.Accepted,
			NoOption: h.NoOption, AvgOptions: h.AvgOptions,
		})
	}
	sort.Slice(out.Hourly, func(i, j int) bool { return out.Hourly[i].Hour < out.Hourly[j].Hour })
	return out, nil
}

// MultiTrip is one entry of a multi-city workload: endpoints are
// planar coordinates — city assignment is the system's job, not the
// trace's.
type MultiTrip = sim.MultiTrip

// CityTally is one city's slice of a multi-city replay.
type CityTally = sim.CityResult

// MultiWorkloadConfig parameterises GenerateMultiWorkload.
type MultiWorkloadConfig struct {
	// NumTrips is the total trip count across all cities.
	NumTrips int
	// DaySeconds is the horizon (0 = 86400).
	DaySeconds float64
	// Weights skews the per-city load share by city name (nil =
	// uniform).
	Weights map[string]float64
	// CrossFrac moves this fraction of trips' destinations into another
	// city (relay serves them when enabled; typed rejections otherwise).
	CrossFrac float64
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateMultiWorkload synthesises a skewed multi-city day over a
// multi-city system's cities.
func (s *System) GenerateMultiWorkload(cfg MultiWorkloadConfig) ([]MultiTrip, error) {
	if s.router == nil {
		return nil, fmt.Errorf("ptrider: GenerateMultiWorkload needs a multi-city system")
	}
	return sim.GenerateMultiWorkload(s.router, sim.MultiWorkloadConfig{
		NumTrips:   cfg.NumTrips,
		DaySeconds: cfg.DaySeconds,
		Weights:    cfg.Weights,
		CrossFrac:  cfg.CrossFrac,
		Seed:       cfg.Seed,
	})
}

// MultiSimResult aggregates a multi-city replay.
type MultiSimResult struct {
	// Stats is the cross-city aggregate panel; CityStats the per-city
	// panels; Relay the relay scheduler's counters (zero without
	// relay).
	Stats     Stats
	CityStats map[string]Stats
	Relay     RelayStats
	// Submitted counts trips offered to the system; CrossRejected the
	// cross-city trips rejected (zero with relay); NoCity trips whose
	// origin no city serves.
	Submitted     int
	CrossRejected int
	NoCity        int
	// Accepted / Declined / NoOption mirror the single-city replay;
	// Relayed counts cross-city trips served through relay scheduling.
	Accepted int
	Declined int
	NoOption int
	Relayed  int
	// PerCity breaks the served trips down by owning city.
	PerCity map[string]CityTally
}

// RunMultiWorkload replays a multi-city workload against the system:
// trips are submitted by coordinate at their due tick, the rider model
// chooses (relay trips through their synthesised joint options), and
// every city's fleet moves concurrently on each tick.
func (s *System) RunMultiWorkload(trips []MultiTrip, opts SimOptions) (MultiSimResult, error) {
	if s.router == nil {
		return MultiSimResult{}, fmt.Errorf("ptrider: RunMultiWorkload needs a multi-city system")
	}
	choice, err := choiceModel(opts.Choice)
	if err != nil {
		return MultiSimResult{}, err
	}
	if opts.FailuresPerHour != 0 {
		return MultiSimResult{}, fmt.Errorf("ptrider: failure injection is not supported by the multi-city replay")
	}
	res, err := sim.RunMulti(s.svc, trips, sim.Config{
		TickSeconds: opts.TickSeconds,
		Choice:      choice,
		Seed:        opts.Seed,
	})
	if err != nil {
		return MultiSimResult{}, err
	}
	out := MultiSimResult{
		Stats:         statsOf(res.Stats.Total),
		CityStats:     make(map[string]Stats, len(res.Stats.Cities)),
		Submitted:     res.Submitted,
		CrossRejected: res.CrossRejected,
		NoCity:        res.NoCity,
		Accepted:      res.Accepted,
		Declined:      res.Declined,
		NoOption:      res.NoOption,
		Relayed:       res.Relayed,
		PerCity:       res.PerCity,
	}
	for name, cs := range res.Stats.Cities {
		out.CityStats[name] = statsOf(cs)
	}
	if res.Stats.RelayEnabled {
		out.Relay = RelayStats(res.Stats.Relay)
	}
	return out, nil
}
