package ptrider_test

import (
	"math/rand"
	"testing"

	"ptrider/internal/core"
	"ptrider/internal/gen"
	"ptrider/internal/gridindex"
	"ptrider/internal/roadnet"
	"ptrider/internal/sim"
)

// buildBatchWorld builds one loaded dual-side city for the coalescing
// efficiency test. Both engines are built identically so option sets
// are comparable item by item.
func buildBatchWorld(t *testing.T) *core.Engine {
	t.Helper()
	g, err := gen.GenerateNetwork(gen.CityConfig{Width: 24, Height: 24, RemoveFrac: 0.15, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(g, core.Config{
		GridCols: 12, GridRows: 12, Capacity: 4,
		MaxWaitSeconds: 300, Sigma: 0.4, Seed: 31,
		Algorithm: core.AlgoDualSide,
		// Serial probes keep the exact-search counts deterministic:
		// concurrent probes racing on a cold memo pair may both compute
		// it, which DistCalls counts twice (documented), so a
		// multi-core host would wobble the measured ratio.
		MatchWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.AddVehiclesUniform(120)
	trips, err := gen.GenerateTrips(g, gen.TripConfig{NumTrips: 150, DaySeconds: 600, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(eng, trips, sim.Config{TickSeconds: 2, Seed: 32, EndSeconds: 600})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestBatchCoalescingDistCalls pins ISSUE 2's acceptance criterion in
// CI: a hot-cell batch (many simultaneous requests sharing an origin
// grid cell) answered by the coalesced SubmitBatch pipeline must
// perform at least 2x fewer exact shortest-path searches than issuing
// the same requests through per-request Submit, while returning the
// same option sets. The coalesced path's searches are the two
// whole-graph fills per request plus the shared residue; the
// per-request path pays one pass per empty-scan cell and two per probe
// flush.
func TestBatchCoalescingDistCalls(t *testing.T) {
	engA := buildBatchWorld(t) // answers the batch
	engB := buildBatchWorld(t) // answers per-request

	grid := engA.Grid()
	best := gridindex.CellID(0)
	for c := 0; c < grid.NumCells(); c++ {
		if len(grid.Cell(gridindex.CellID(c)).Vertices) > len(grid.Cell(best).Vertices) {
			best = gridindex.CellID(c)
		}
	}
	verts := grid.Cell(best).Vertices
	rng := rand.New(rand.NewSource(33))
	n := engA.Graph().NumVertices()
	var items []core.BatchItem
	for len(items) < 16 {
		s := verts[rng.Intn(len(verts))]
		d := roadnet.VertexID(rng.Intn(n))
		if s == d {
			continue
		}
		items = append(items, core.BatchItem{S: s, D: d, Riders: 1, Constraints: core.DefaultConstraints()})
	}

	engA.ResetDistCache()
	beforeA := engA.DistCalls()
	recs, err := engA.SubmitBatch(items)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	batchCalls := engA.DistCalls() - beforeA

	engB.ResetDistCache()
	beforeB := engB.DistCalls()
	perReq := make([][]core.Option, len(items))
	for i, it := range items {
		rec, err := engB.Submit(it.S, it.D, it.Riders)
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		perReq[i] = rec.Options
		if err := engB.Decline(rec.ID); err != nil {
			t.Fatal(err)
		}
	}
	perReqCalls := engB.DistCalls() - beforeB

	t.Logf("dist calls: coalesced %d, per-request %d (%.2fx)",
		batchCalls, perReqCalls, float64(perReqCalls)/float64(batchCalls))
	if perReqCalls < 2*batchCalls {
		t.Fatalf("coalescing saved too little: batch %d vs per-request %d exact searches (need ≥2x)",
			batchCalls, perReqCalls)
	}

	// The savings must not change what riders are offered.
	for i := range items {
		a, b := recs[i].Options, perReq[i]
		if len(a) != len(b) {
			t.Fatalf("item %d: %d options coalesced vs %d per-request", i, len(a), len(b))
		}
		for j := range a {
			if a[j].Vehicle != b[j].Vehicle || len(a[j].Candidate.Seq) != len(b[j].Candidate.Seq) {
				t.Fatalf("item %d option %d: (%d, %d stops) vs (%d, %d stops)",
					i, j, a[j].Vehicle, len(a[j].Candidate.Seq), b[j].Vehicle, len(b[j].Candidate.Seq))
			}
		}
	}
}
