module ptrider

go 1.24
